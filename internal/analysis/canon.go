package analysis

import (
	"strings"

	"queryflocks/internal/datalog"
)

// This file canonicalizes whole flock programs for the serving layer's
// caches. The canonical text of a program is its paper-notation rendering
// after per-rule variable alpha-renaming (datalog.CanonicalRule), so two
// programs that differ only in variable names, whitespace, or comments
// share one cache key. Parameters are kept verbatim: they name the
// answer columns and are semantically significant.

// CanonicalProgram renders a parsed flock program in canonical form:
// VIEWS (if any), QUERY rules, and the FILTER condition, each section on
// its own lines, with every rule alpha-renamed. Rule and view order is
// preserved — it participates in plan derivation (§4.2 rule 3) and view
// stratification.
func CanonicalProgram(fs *datalog.FlockSource) string {
	var b strings.Builder
	if len(fs.Views) > 0 {
		b.WriteString("VIEWS:\n")
		for _, v := range fs.Views {
			b.WriteString(datalog.CanonicalRule(v))
			b.WriteByte('\n')
		}
	}
	b.WriteString("QUERY:\n")
	for _, r := range fs.Query {
		b.WriteString(datalog.CanonicalRule(r))
		b.WriteByte('\n')
	}
	b.WriteString("FILTER:\n")
	// The filter is rendered positionally (datalog.CanonicalFilter): its
	// target must survive the alpha-renaming applied to the rules above,
	// and only the head-argument position does.
	var head *datalog.Atom
	if len(fs.Query) > 0 {
		head = fs.Query[0].Head
	}
	b.WriteString(datalog.CanonicalFilter(fs.Filter, head))
	return b.String()
}

// ParseDiagnostic converts a parse error into the QF001 diagnostic the
// front-ends report, recovering the source position when the parser
// provided one. It is the exported form of the conversion AnalyzeSource
// applies, for callers that parse once themselves and share the result
// between the analyzer and the evaluator.
func ParseDiagnostic(err error, opts Options) Diagnostic {
	return syntaxDiagnostic(err, opts)
}
