package analysis

import (
	"errors"
	"fmt"
	"strings"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// DefaultContainmentBudget caps the backtracking containment-mapping
// search (§3.1) per query pair. Adversarial inputs — many same-predicate
// subgoals — make the search exponential; past the budget the redundancy
// passes stay silent rather than stall.
const DefaultContainmentBudget = 100_000

// Options configures an analysis run.
type Options struct {
	// File names the source in diagnostics ("<input>" when empty).
	File string
	// DB, when non-nil, enables the schema checks (QF016): every referenced
	// relation must exist with a compatible arity.
	DB *storage.Database
	// ContainmentBudget overrides DefaultContainmentBudget (0 = default,
	// negative = unlimited).
	ContainmentBudget int
	// Shardable, when non-nil, enables the cluster-shardability pass
	// (QF024): it reports whether the serving cluster can scatter the
	// flock's FILTER computation, with a one-line reason when it cannot
	// (a coordinator-local fallback). Coordinators inject it, closing
	// over their shard map and the request's strategy; single-node runs
	// leave it nil. The hook lives here as a closure so this package
	// never imports the cluster machinery.
	Shardable func(fs *datalog.FlockSource) (ok bool, reason string)
}

func (o Options) budget() int {
	if o.ContainmentBudget == 0 {
		return DefaultContainmentBudget
	}
	return o.ContainmentBudget
}

// AnalyzeSource parses and analyzes a flock program. Parse failures yield
// a single QF001 diagnostic; otherwise the full pass registry runs. The
// result is sorted (see Sort) and never nil-vs-empty significant: callers
// should test HasErrors / len.
func AnalyzeSource(src string, opts Options) []Diagnostic {
	fs, err := datalog.ParseFlock(StripExplain(src))
	if err != nil {
		return []Diagnostic{syntaxDiagnostic(err, opts)}
	}
	return AnalyzeFlockSource(fs, opts)
}

// AnalyzeFlockSource runs every semantic pass over a parsed flock source.
func AnalyzeFlockSource(fs *datalog.FlockSource, opts Options) []Diagnostic {
	a := &analyzer{fs: fs, opts: opts}
	for _, pass := range passes {
		pass(a)
	}
	ds := a.diags
	for i := range ds {
		ds[i].File = opts.File
	}
	Sort(ds)
	return ds
}

// analyzer accumulates diagnostics across the passes.
type analyzer struct {
	fs    *datalog.FlockSource
	opts  Options
	diags []Diagnostic
}

func (a *analyzer) report(code string, sev Severity, pos datalog.Pos, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	}.at(pos))
}

// passes is the registry of semantic passes, run in order. Each pass is
// independent; a program failing one pass still runs the others, so a
// single lint reports every problem at once.
var passes = []func(*analyzer){
	passViews,            // QF015: view discipline (§2.2 extension)
	passSafety,           // QF002: safety conditions 1–3 (§3.2–§3.3)
	passParamsInHead,     // QF003: parameters may not appear in heads
	passUnboundParams,    // QF004: every parameter positive in every rule
	passNoParams,         // QF005: a flock must have parameters
	passFilter,           // QF006/QF007/QF008: filter resolution & §5 monotonicity
	passComparisons,      // QF011/QF012: unsatisfiable / tautological arithmetic
	passRedundantSubgoal, // QF009: containment-redundant subgoals (§3.1)
	passSubsumedBranch,   // QF010: subsumed union branches (§3.4)
	passSingletonVars,    // QF013: variables used only once
	passSchema,           // QF016: relations exist with matching arity
	passShardable,        // QF024: cluster-mode coordinator-local fallback
}

// passShardable surfaces a coordinator-local fallback at lint time: in
// cluster mode, a flock (or a requested strategy) the shard map cannot
// legally partition still answers correctly, but on the coordinator
// alone — usually a surprise worth a warning. Single-node runs skip the
// pass (no hook).
func passShardable(a *analyzer) {
	if a.opts.Shardable == nil {
		return
	}
	if ok, reason := a.opts.Shardable(a.fs); !ok {
		a.report("QF024", SevWarning, datalog.Pos{},
			"not shardable: %s; the coordinator will evaluate this flock locally instead of scattering it", reason)
	}
}

// syntaxDiagnostic converts a parse error into a QF001 diagnostic,
// recovering the source position when the parser provided one.
func syntaxDiagnostic(err error, opts Options) Diagnostic {
	d := Diagnostic{Code: "QF001", Severity: SevError, File: opts.File}
	if se, ok := asSyntaxError(err); ok {
		d = d.at(se.Pos)
		d.Message = se.Msg
	} else {
		d.Message = strings.TrimPrefix(err.Error(), "datalog: ")
	}
	return d
}

func asSyntaxError(err error) (*datalog.SyntaxError, bool) {
	var se *datalog.SyntaxError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// StripExplain blanks a leading EXPLAIN or EXPLAIN ANALYZE prefix,
// replacing the keywords with spaces so every later source position still
// refers to the original text. Front-ends that accept the EXPLAIN forms
// (flockql, flockd) lint the underlying program.
func StripExplain(src string) string {
	trimmed := strings.TrimLeft(src, " \t\r\n")
	offset := len(src) - len(trimmed)
	blank := func(word string) bool {
		if len(trimmed) < len(word) || !strings.EqualFold(trimmed[:len(word)], word) {
			return false
		}
		rest := trimmed[len(word):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\r' && rest[0] != '\n' {
			return false
		}
		b := []byte(src)
		for i := offset; i < offset+len(word); i++ {
			b[i] = ' '
		}
		src = string(b)
		trimmed = strings.TrimLeft(src[offset+len(word):], " \t\r\n")
		offset = len(src) - len(trimmed)
		return true
	}
	if blank("EXPLAIN") {
		blank("ANALYZE")
	}
	return src
}
