package analysis

import (
	"errors"
	"strings"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
)

// This file analyzes FILTER-step query plans (§4.1) against the §4.2
// legality recipe. The four rules map to one code each, so a diagnostic
// names exactly which condition failed:
//
//	QF020  rule 1: every step uses the flock's (monotone) filter
//	QF021  rule 2: steps define uniquely named relations
//	QF022  rule 3: each step derives from the flock's query by adding
//	       prior-step references and deleting subgoals, preserving safety
//	QF023  rule 4: the final step keeps every subgoal and restricts
//	       exactly the flock's parameters
//
// QF019 covers plans malformed outside the recipe, and QF014 warns about
// dead steps no later step references.

// AnalyzePlanSource parses a plan in Fig. 5 notation and checks its
// legality for the flock. Parse failures yield QF001.
func AnalyzePlanSource(f *core.Flock, planSrc string, opts Options) []Diagnostic {
	spec, err := datalog.ParsePlan(planSrc)
	if err != nil {
		return []Diagnostic{syntaxDiagnostic(err, opts)}
	}
	return AnalyzePlanSpec(f, spec, opts)
}

// AnalyzePlanSpec checks a parsed plan's §4.2 legality and step liveness.
func AnalyzePlanSpec(f *core.Flock, spec *datalog.PlanSpec, opts Options) []Diagnostic {
	var ds []Diagnostic
	if _, err := core.PlanFromSpec(f, spec); err != nil {
		ds = append(ds, planDiagnostic(err, spec))
	}
	ds = append(ds, deadSteps(spec)...)
	for i := range ds {
		ds[i].File = opts.File
	}
	Sort(ds)
	return ds
}

// planDiagnostic converts a plan-validation error into a positioned
// diagnostic, mapping the violated §4.2 legality rule to its code.
func planDiagnostic(err error, spec *datalog.PlanSpec) Diagnostic {
	var pe *core.PlanError
	if !errors.As(err, &pe) {
		return Diagnostic{
			Code:     "QF019",
			Severity: SevError,
			Message:  strings.TrimPrefix(err.Error(), "core: "),
		}
	}
	code := "QF019"
	switch pe.LegalityRule {
	case 1:
		code = "QF020"
	case 2:
		code = "QF021"
	case 3:
		code = "QF022"
	case 4:
		code = "QF023"
	}
	d := Diagnostic{
		Code:     code,
		Severity: SevError,
		Message:  strings.TrimPrefix(pe.Error(), "core: "),
	}
	for _, s := range spec.Steps {
		if s.Name == pe.Step {
			d = d.at(s.Pos)
			break
		}
	}
	return d
}

// deadSteps warns (QF014) about non-final steps that no later step
// references: their FILTER relation is computed and never read.
func deadSteps(spec *datalog.PlanSpec) []Diagnostic {
	if len(spec.Steps) == 0 {
		return nil
	}
	referenced := make(map[string]bool)
	for _, s := range spec.Steps {
		for _, r := range s.Query {
			for _, sg := range r.Body {
				if a, ok := sg.(*datalog.Atom); ok {
					referenced[a.Pred] = true
				}
			}
		}
	}
	var ds []Diagnostic
	for _, s := range spec.Steps[:len(spec.Steps)-1] {
		if !referenced[s.Name] {
			ds = append(ds, Diagnostic{
				Code:     "QF014",
				Severity: SevWarning,
				Message:  "step " + s.Name + " is never referenced by a later step; its result is dead",
			}.at(s.Pos))
		}
	}
	return ds
}
