package core

import (
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/storage"
)

// fig3Plan builds the §4.1 two-step plan for the medical flock: okS
// filters symptom parameters, the final step references okS once — the
// fusable shape (single positive consumer, distinct parameter args).
func fig3Plan(t *testing.T) *Plan {
	t.Helper()
	f := MustParse(fig3Src)
	stepS := fig3StepS(t, f)
	p, err := NewPlan(f, []FilterStep{stepS, FinalStep(f, "ok", stepS)})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fig2SymmetryPlan builds the §3.1 market-basket plan whose single-item
// step is referenced TWICE (as ok1($1) and ok1($2)) — never fusable.
func fig2SymmetryPlan(t *testing.T) *Plan {
	t.Helper()
	f := MustParse(fig2Src)
	sub, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"1"})
	if !ok {
		t.Fatal("no single-item subquery")
	}
	ok1 := FilterStep{Name: "ok1", Params: []datalog.Param{"1"}, Query: datalog.Union{sub.Rule}}
	final := FinalStepRefs(f, "ok", StepRef{Step: ok1, Args: []datalog.Param{"1"}},
		StepRef{Step: ok1, Args: []datalog.Param{"2"}})
	p, err := NewPlan(f, []FilterStep{ok1, final})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFusableSteps(t *testing.T) {
	fused := fig3Plan(t).fusableSteps()
	if !fused["okS"] {
		t.Error("fig3 okS is consumed once positively; should be fusable")
	}
	if fused["ok"] {
		t.Error("the final step has no consumer; must not be fusable")
	}
	sym := fig2SymmetryPlan(t).fusableSteps()
	if sym["ok1"] {
		t.Error("ok1 is referenced twice; must not be fusable")
	}
}

// TestExecuteFusedMatchesExecute is the fusion oracle: on both the
// fusable fig3 plan and the non-fusable symmetry plan, ExecuteFused
// must produce the same answer set as the step-materializing Execute —
// and as the naive evaluator — in both streaming modes (columnar and
// row-at-a-time) at worker counts 1, 2 and 8.
func TestExecuteFusedMatchesExecute(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		db   func() *storage.Database
	}{
		{"fig3-fusable", fig3Plan(t), medicalDB},
		{"fig2-symmetry", fig2SymmetryPlan(t), basketsDB},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db := c.db()
			want, err := c.plan.Flock.EvalNaive(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, exec := range []eval.ExecMode{eval.ExecStream, eval.ExecStreamRows} {
				for _, w := range []int{1, 2, 8} {
					opts := &EvalOptions{Workers: w, Exec: exec}
					fused, err := c.plan.ExecuteFused(db, opts)
					if err != nil {
						t.Fatalf("%v workers=%d: fused: %v", exec, w, err)
					}
					res, err := c.plan.Execute(db, opts)
					if err != nil {
						t.Fatalf("%v workers=%d: unfused: %v", exec, w, err)
					}
					if !fused.Equal(res.Answer) {
						t.Fatalf("%v workers=%d: fused answer differs from Execute\nfused:\n%s\nunfused:\n%s",
							exec, w, fused.Dump(), res.Answer.Dump())
					}
					if !fused.Equal(want) {
						t.Fatalf("%v workers=%d: fused answer differs from naive oracle\nfused:\n%s\nwant:\n%s",
							exec, w, fused.Dump(), want.Dump())
					}
				}
			}
		})
	}
}
