package core_test

import (
	"fmt"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// tinyBaskets builds the beer/diapers database used by the examples.
func tinyBaskets() *storage.Database {
	rel := storage.NewRelation("baskets", "BID", "Item")
	for bid, items := range map[int64][]string{
		1: {"beer", "diapers", "relish"},
		2: {"beer", "diapers"},
		3: {"beer"},
	} {
		for _, it := range items {
			rel.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	db := storage.NewDatabase()
	db.Add(rel)
	return db
}

// The Fig. 2 market-basket flock, evaluated directly.
func ExampleFlock_Eval() {
	flock := core.MustParse(`
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 2`)

	answer, err := flock.Eval(tinyBaskets(), nil)
	if err != nil {
		panic(err)
	}
	for _, t := range answer.Sorted() {
		fmt.Printf("%v appears with %v\n", t[0], t[1])
	}
	// Output:
	// beer appears with diapers
}

// Enumerating the candidate pre-filter subqueries of §3 for the medical
// flock of Fig. 3 (Example 3.2's eight safe subqueries).
func ExampleEnumerateSubqueries() {
	flock := core.MustParse(`
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 20`)

	subs := core.EnumerateSubqueries(flock.Query[0])
	fmt.Println(len(subs), "safe subqueries; the smallest:")
	for _, s := range subs[:2] {
		fmt.Println(" ", s)
	}
	// Output:
	// 8 safe subqueries; the smallest:
	//   answer(P) :- exhibits(P,$s)
	//   answer(P) :- treatments(P,$m)
}

// Building and executing a Fig. 5-style plan by hand: one pre-filter step
// for $1, then the mandatory final step.
func ExampleNewPlan() {
	flock := core.MustParse(`
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 2`)

	sub, _ := core.MinimalSubqueryForParams(flock.Query[0], []datalog.Param{"1"})
	step := core.FilterStep{
		Name:   "ok1",
		Params: []datalog.Param{"1"},
		Query:  datalog.Union{sub.Rule},
	}
	plan, err := core.NewPlan(flock, []core.FilterStep{step, core.FinalStep(flock, "ok", step)})
	if err != nil {
		panic(err)
	}
	res, err := plan.Execute(tinyBaskets(), nil)
	if err != nil {
		panic(err)
	}
	for _, s := range res.Steps {
		fmt.Printf("%s: %d survivors\n", s.Name, s.Rows)
	}
	// Output:
	// ok1: 2 survivors
	// ok: 1 survivors
}
