package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// This file implements cross-evaluation memoization of FILTER computations
// (§4.1) — the serving layer's third cache plane. Every FILTER computation,
// whether the whole flock (direct strategy) or one plan step (a §3.1 safe
// candidate subquery), factors into two memoizable pieces:
//
//   - the *extended answer*: the distinct (params..., head...) tuples of the
//     parametrized query. It does not depend on the filter at all, so a
//     flock re-posted with a tightened support threshold — the interactive
//     mining session pattern — reuses the already-mined candidate tuples and
//     pays only a re-grouping;
//   - the *survivor set*: the parameter tuples whose group passes the
//     filter. It is the step's full result, keyed on query and filter both.
//
// Keys are derived from the canonical (alpha-renamed) query text, so
// programs differing only in variable names share entries, and every key is
// scoped by a caller-provided salt binding the database version and view
// context (see MemoContext). Within a plan, the salt is additionally
// chained step by step: step queries reference earlier step relations *by
// name*, so a step's canonical text alone would alias across plans that
// bind the same name to different contents.

// SubqueryMemo is a cache of FILTER-computation results shared across
// evaluations. Implementations must be safe for concurrent use and must
// treat stored relations as immutable (the engine hands out the same
// *storage.Relation to every hit). internal/serve provides the byte-bounded
// LRU implementation flockd mounts.
type SubqueryMemo interface {
	// Extended returns the memoized extended answer for key, if present.
	Extended(key string) (*storage.Relation, bool)
	// PutExtended stores an extended answer. Implementations may decline
	// (e.g. an entry larger than the cache); Put is advisory.
	PutExtended(key string, rel *storage.Relation)
	// Survivors returns the memoized survivor set for key, if present.
	Survivors(key string) (*storage.Relation, bool)
	// PutSurvivors stores a survivor set.
	PutSurvivors(key string, rel *storage.Relation)
}

// MemoContext returns the base memo salt for evaluating f against db: the
// database's data-version counter plus the canonical text of the flock's
// views. Both scope every key derived under them — results computed
// against one data version (or one view context) can never answer for
// another; bumping the version on mutation is the invalidation mechanism.
func MemoContext(db *storage.Database, f *Flock) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", db.Version())
	for _, v := range f.Views {
		b.WriteByte('\n')
		b.WriteString(datalog.CanonicalRule(v))
	}
	return b.String()
}

// CanonicalString renders the filter positionally (the resolved
// head-argument index instead of the head-variable name), matching
// datalog.CanonicalFilter so the two layers derive identical cache keys.
func (f Filter) CanonicalString() string {
	target := "answer(*)"
	if f.headPos >= 0 {
		target = fmt.Sprintf("answer.#%d", f.headPos)
	}
	return fmt.Sprintf("%s(%s) %s %s", f.spec.Agg, target, f.spec.Op, f.spec.Threshold.Literal())
}

// memoKey hashes its length-prefixed parts into a fixed-size hex key.
func memoKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// extendedKey identifies one extended answer: salt + parameter layout
// (paramList; order fixes the column layout) + canonical query.
// Deliberately filter-free.
func extendedKey(salt string, params []datalog.Param, query datalog.Union) string {
	return memoKey("ext", salt, paramList(params), datalog.CanonicalUnion(query))
}

// survivorKey identifies one survivor set: the extended answer it groups
// plus the canonical filter.
func survivorKey(extKey string, filter Filter) string {
	return memoKey("surv", extKey, filter.CanonicalString())
}

// chainSalt extends a plan's memo salt past one executed step. Later
// steps reference this step's relation by name, so their keys must bind
// the name to this step's full derivation (query, parameter layout, and
// the filter it was grouped under).
func chainSalt(salt string, step FilterStep, filter Filter) string {
	return memoKey("step", salt, step.Name, paramList(step.Params),
		datalog.CanonicalUnion(step.Query), filter.CanonicalString())
}

// evalFilteredMemo is evalFiltered with the memo planes consulted: a
// survivor hit skips the computation entirely; an extended hit skips the
// query evaluation and pays only the group-by. Either way the answer is
// the same relation evalFiltered would have produced — the memo only
// short-circuits work, never changes results — and resource gates still
// see the output so budget errors stay deterministic.
func evalFilteredMemo(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter Filter, name string, opts *EvalOptions) (*storage.Relation, error) {

	memo := opts.Memo
	extKey := extendedKey(opts.MemoSalt, params, query)
	survKey := survivorKey(extKey, filter)

	var start time.Time
	if opts.Trace != nil {
		start = time.Now()
	}
	if res, ok := memo.Survivors(survKey); ok {
		if res.Name() != name {
			res = res.Rename(name, nil)
		}
		if err := opts.gate().CheckOutput(res.Len()); err != nil {
			return nil, err
		}
		if opts.Trace != nil {
			opts.Trace.Collector().Record(obs.Event{
				Op:      obs.OpGroup,
				Desc:    fmt.Sprintf("%s [%s]", name, filter),
				RowsOut: res.Len(),
				Cached:  true,
				Wall:    time.Since(start),
			})
		}
		return res, nil
	}

	ext, extHit := memo.Extended(extKey)
	if !extHit {
		var err error
		ext, err = eval.EvalUnion(db, query, func(r *datalog.Rule) []datalog.Term {
			return extendedOut(params, r)
		}, opts.subquery().evalOpts())
		if err != nil {
			return nil, err
		}
		memo.PutExtended(extKey, ext)
	}
	res, groups, used := groupAndFilter(ext, len(params), filter, name, opts.workers())
	opts.gate().NoteLive(ext.Len() + groups + res.Len())
	if err := opts.gate().CheckOutput(res.Len()); err != nil {
		return nil, err
	}
	if err := opts.gate().Check(); err != nil {
		return nil, err
	}
	memo.PutSurvivors(survKey, res)
	if opts.Trace != nil {
		opts.Trace.Collector().Record(obs.Event{
			Op:      obs.OpGroup,
			Desc:    fmt.Sprintf("%s [%s]", name, filter),
			RowsIn:  ext.Len(),
			RowsOut: res.Len(),
			Groups:  groups,
			Workers: used,
			Cached:  extHit,
			Wall:    time.Since(start),
		})
		opts.Trace.Collector().ObservePeak(ext.Len() + groups + res.Len())
	}
	return res, nil
}
