package core

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/storage"
)

// This file implements the direct evaluator: materialize the "extended
// answer" — the distinct (parameters..., head...) tuples of the
// parametrized query — then group by the parameter prefix and apply the
// filter to each group. This computes the flock's meaning in one pass and
// is the workhorse that FILTER steps and full plans are built from.

// EvalOptions configures flock evaluation.
type EvalOptions struct {
	// Order is the join-order strategy for the underlying engine.
	Order eval.OrderStrategy
	// Trace, when non-nil, records engine steps and group statistics.
	Trace *eval.Trace
	// Parallel evaluates union branches concurrently.
	Parallel bool
}

func (o *EvalOptions) evalOpts() *eval.Options {
	if o == nil {
		return nil
	}
	return &eval.Options{Order: o.Order, Trace: o.Trace, Parallel: o.Parallel}
}

// Eval computes the flock's answer over db using the direct group-by
// strategy. The result has one column per parameter (see ParamColumns) and
// one tuple per accepted assignment. Views, if any, are materialized
// first.
func (f *Flock) Eval(db *storage.Database, opts *EvalOptions) (*storage.Relation, error) {
	mat, err := f.MaterializeViews(db, opts)
	if err != nil {
		return nil, err
	}
	return evalFiltered(mat, f.Params, f.Query, f.Filter, "flock", opts)
}

// evalFiltered evaluates one FILTER computation (§4.1): the set of
// param-tuples whose query result passes the filter. It is shared by the
// direct evaluator (whole flock) and the plan executor (each step).
func evalFiltered(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter Filter, name string, opts *EvalOptions) (*storage.Relation, error) {

	if filter.PassesEmpty() {
		return nil, fmt.Errorf("core: filter %s accepts the empty result; the flock's answer would be infinite", filter)
	}
	ext, err := eval.EvalUnion(db, query, func(r *datalog.Rule) []datalog.Term {
		return extendedOut(params, r)
	}, opts.evalOpts())
	if err != nil {
		return nil, err
	}
	res := GroupAndFilter(ext, len(params), filter, name)
	if opts != nil && opts.Trace != nil {
		opts.Trace.Add(fmt.Sprintf("filter %s [%s]", name, filter), res.Len())
	}
	return res, nil
}

// GroupAndFilter groups an extended-answer relation by its first nParams
// columns, applies the filter to each group's head tuples, and returns the
// passing parameter tuples. Monotone filters short-circuit per group.
func GroupAndFilter(ext *storage.Relation, nParams int, filter Filter, name string) *storage.Relation {
	paramPos := make([]int, nParams)
	for i := range paramPos {
		paramPos[i] = i
	}
	headPos := make([]int, ext.Arity()-nParams)
	for i := range headPos {
		headPos[i] = nParams + i
	}
	out := storage.NewRelation(name, ext.Columns()[:nParams]...)

	type group struct {
		params storage.Tuple
		acc    GroupAcc
		done   bool
	}
	groups := make(map[string]*group)
	for _, t := range ext.Tuples() {
		key := t.KeyOn(paramPos)
		g, ok := groups[key]
		if !ok {
			g = &group{params: t.Project(paramPos), acc: filter.NewGroup()}
			groups[key] = g
		}
		if g.done {
			continue
		}
		g.acc.Add(t.Project(headPos))
		if g.acc.Done() {
			g.done = true
		}
	}
	for _, g := range groups {
		if g.acc.Passes() {
			out.Insert(g.params)
		}
	}
	return out
}
