package core

import (
	"context"
	"fmt"
	"time"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/par"
	"queryflocks/internal/storage"
)

// This file implements the direct evaluator: materialize the "extended
// answer" — the distinct (parameters..., head...) tuples of the
// parametrized query — then group by the parameter prefix and apply the
// filter to each group. This computes the flock's meaning in one pass and
// is the workhorse that FILTER steps and full plans are built from.

// EvalOptions configures flock evaluation.
type EvalOptions struct {
	// Order is the join-order strategy for the underlying engine.
	Order eval.OrderStrategy
	// Trace, when non-nil, records engine steps and group statistics.
	Trace *eval.Trace
	// Parallel evaluates union branches concurrently.
	Parallel bool
	// Workers is the worker count for the partitioned join, anti-join,
	// and group-by operators: 0 (the default) means one worker per CPU,
	// 1 forces the sequential paths, larger values are used as given.
	// Results are identical for every worker count.
	Workers int
	// Exec selects the streaming physical-plan executor (default) or the
	// legacy materializing executor (eval.ExecMaterialize). Answers are
	// identical; only intermediate buffering differs.
	Exec eval.ExecMode
	// Ctx, when non-nil, cancels the evaluation cooperatively; both
	// executors abort with eval.ErrCanceled at their next checkpoint.
	Ctx context.Context
	// Limits bounds the evaluation's wall clock, live intermediate
	// tuples, and answer rows (see eval.Limits); the zero value is
	// unlimited, and unhit limits never change answers.
	Limits eval.Limits
	// Gate, when non-nil, is a pre-resolved checkpoint shared by a larger
	// evaluation (e.g. every step of a plan); when nil, one is derived
	// from Ctx and Limits per top-level Eval/Execute call.
	Gate *eval.Gate
	// Memo, when non-nil, memoizes FILTER computations across evaluations
	// (see memo.go): extended answers keyed filter-free — so a threshold-
	// tightened re-run reuses the mined candidate tuples — and survivor
	// sets keyed on query plus filter. Callers must also set MemoSalt.
	Memo SubqueryMemo
	// MemoSalt scopes memo keys to a database version and view context;
	// derive it with MemoContext. An empty salt with a non-nil Memo would
	// let results leak across data versions, so flockd always sets both.
	MemoSalt string
	// FilterEval, when non-nil, may take over an entire FILTER computation
	// (§4.1) before the local evaluator runs — the cluster coordinator
	// mounts it to scatter the computation across worker shards and merge
	// the serialized partial group states. Returning handled=false falls
	// back to the local path; a handled computation must return the same
	// relation the local path would (the cluster oracle tests pin this).
	// The hook sees every FILTER computation of the direct strategy and of
	// executed §4.2 plans; the dynamic strategy never consults it.
	FilterEval FilterEvalFn
}

// FilterEvalFn is EvalOptions.FilterEval's signature: one FILTER
// computation, described exactly as the local evaluator receives it —
// the database (views and earlier step relations included), the
// parameter list, the parametrized query, and the resolved filter.
type FilterEvalFn func(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter Filter, name string, opts *EvalOptions) (*storage.Relation, bool, error)

func (o *EvalOptions) evalOpts() *eval.Options {
	if o == nil {
		return nil
	}
	return &eval.Options{Order: o.Order, Trace: o.Trace, Parallel: o.Parallel, Workers: o.Workers, Exec: o.Exec,
		Ctx: o.Ctx, Limits: o.Limits, Gate: o.Gate}
}

// gate returns the options' checkpoint (nil-safe; may itself be nil).
func (o *EvalOptions) gate() *eval.Gate {
	if o == nil {
		return nil
	}
	return o.Gate
}

// withGate returns options with the checkpoint resolved once, so every
// view, step, and rule of one evaluation shares a single wall clock and
// budget. Nil options stay nil (nothing to bound).
func (o *EvalOptions) withGate() *EvalOptions {
	if o == nil || o.Gate != nil {
		return o
	}
	c := *o
	c.Gate = eval.NewGate(c.Ctx, c.Limits)
	return &c
}

// subquery returns options for evaluating a relation that is not the
// flock's answer — views, extended answers, intermediate plan steps:
// the same shared clock and tuple budget, but no answer-row cap.
func (o *EvalOptions) subquery() *EvalOptions {
	if o == nil {
		return nil
	}
	c := *o
	c.Gate = c.Gate.WithoutOutputCap()
	c.Limits.MaxRows = 0 // in case no gate was resolved yet
	return &c
}

// execMode returns the configured executor mode (streaming by default).
func (o *EvalOptions) execMode() eval.ExecMode {
	if o == nil {
		return eval.ExecStream
	}
	return o.Exec
}

// workers returns the configured worker knob (0 when opts is nil, meaning
// one worker per CPU).
func (o *EvalOptions) workers() int {
	if o == nil {
		return 0
	}
	return o.Workers
}

// Eval computes the flock's answer over db using the direct group-by
// strategy. The result has one column per parameter (see ParamColumns) and
// one tuple per accepted assignment. Views, if any, are materialized
// first.
func (f *Flock) Eval(db *storage.Database, opts *EvalOptions) (*storage.Relation, error) {
	opts = opts.withGate() // views and query share one clock and budget
	mat, err := f.MaterializeViews(db, opts)
	if err != nil {
		return nil, err
	}
	return evalFiltered(mat, f.Params, f.Query, f.Filter, "flock", opts)
}

// evalFiltered evaluates one FILTER computation (§4.1): the set of
// param-tuples whose query result passes the filter. It is shared by the
// direct evaluator (whole flock) and the plan executor (each step).
func evalFiltered(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter Filter, name string, opts *EvalOptions) (*storage.Relation, error) {

	if filter.PassesEmpty() {
		return nil, fmt.Errorf("core: filter %s accepts the empty result; the flock's answer would be infinite", filter)
	}
	if opts != nil && opts.FilterEval != nil {
		if rel, handled, err := opts.FilterEval(db, params, query, filter, name, opts); handled || err != nil {
			return rel, err
		}
	}
	if opts != nil && opts.Memo != nil {
		return evalFilteredMemo(db, params, query, filter, name, opts)
	}
	if opts.execMode().Streaming() {
		plan, err := compileFiltered(db, params, query, filter, name, opts, nil)
		if err != nil {
			return nil, err
		}
		return eval.RunPlan(db, plan, opts.evalOpts())
	}
	// The extended answer is an intermediate (the streaming analogue is
	// a mid-pipeline projection, not the sink): no answer-row cap.
	ext, err := eval.EvalUnion(db, query, func(r *datalog.Rule) []datalog.Term {
		return extendedOut(params, r)
	}, opts.subquery().evalOpts())
	if err != nil {
		return nil, err
	}
	var start time.Time
	if opts != nil && opts.Trace != nil {
		start = time.Now()
	}
	res, groups, used := groupAndFilter(ext, len(params), filter, name, opts.workers())
	// The group-by holds the extended relation, the group accumulators,
	// and the passing tuples live at once; feed that into the tuple
	// budget, and cap the answer like the streaming sink does.
	opts.gate().NoteLive(ext.Len() + groups + res.Len())
	if err := opts.gate().CheckOutput(res.Len()); err != nil {
		return nil, err
	}
	if err := opts.gate().Check(); err != nil {
		return nil, err
	}
	if opts != nil && opts.Trace != nil {
		opts.Trace.Collector().Record(obs.Event{
			Op:      obs.OpGroup,
			Desc:    fmt.Sprintf("%s [%s]", name, filter),
			RowsIn:  ext.Len(),
			RowsOut: res.Len(),
			Groups:  groups,
			Workers: used,
			Wall:    time.Since(start),
		})
		// The materializing group-by holds the full extended relation, one
		// accumulator per group, and the passing tuples at once; record
		// that through the shared peak gauge for streaming comparisons.
		opts.Trace.Collector().ObservePeak(ext.Len() + groups + res.Len())
	}
	return res, nil
}

// minParallelGroupRows is the extended-result size below which the group-by
// stays sequential even when more workers are available: small inputs are
// dominated by goroutine startup and per-worker map state.
const minParallelGroupRows = 256

// GroupAndFilter groups an extended-answer relation by its first nParams
// columns, applies the filter to each group's head tuples, and returns the
// passing parameter tuples. Monotone filters short-circuit per group.
func GroupAndFilter(ext *storage.Relation, nParams int, filter Filter, name string) *storage.Relation {
	return GroupAndFilterWorkers(ext, nParams, filter, name, 1)
}

// GroupAndFilterWorkers is GroupAndFilter with a partitioned parallel path:
// with workers > 1 (see par.Resolve for the knob convention) the extended
// result is range-partitioned, each worker aggregates its chunk into a
// private group map (keeping the per-group monotone short-circuit), and the
// partial accumulators are folded together with GroupAcc.Merge. A merged
// group passes when any partial short-circuited Done — monotone conditions
// cannot un-pass — or the combined aggregate passes; both decisions equal
// the sequential ones, so the answer is identical for every worker count.
func GroupAndFilterWorkers(ext *storage.Relation, nParams int, filter Filter, name string, workers int) *storage.Relation {
	rel, _, _ := groupAndFilter(ext, nParams, filter, name, workers)
	return rel
}

// groupAndFilter is the shared implementation behind GroupAndFilterWorkers;
// alongside the passing parameter tuples it reports the number of distinct
// parameter groups observed and the worker count actually used, which the
// observability layer records per operator.
func groupAndFilter(ext *storage.Relation, nParams int, filter Filter, name string, workers int) (*storage.Relation, int, int) {
	out := storage.NewRelation(name, ext.Columns()[:nParams]...)
	groups, used := aggregateGroups(ext, nParams, filter, workers)
	for _, g := range groups {
		if g.done || g.acc.Passes() {
			out.Insert(g.params)
		}
	}
	return out, len(groups), used
}

// filterGroup is one parameter group's in-flight aggregation state: the
// group's parameter tuple, its accumulator, and whether the monotone
// short-circuit already fired (after which the accumulator is ignored —
// more tuples cannot un-pass a monotone condition).
type filterGroup struct {
	params storage.Tuple
	acc    GroupAcc
	done   bool
}

// aggregateGroups builds the group map of an extended-answer relation:
// one filterGroup per distinct parameter prefix, fed the group's head
// tuples. With workers > 1 the tuples are range-partitioned, each worker
// aggregates a private map, and the partials fold together in worker
// order via mergeFilterGroup — the same merge the cluster coordinator
// applies to per-shard partial states.
func aggregateGroups(ext *storage.Relation, nParams int, filter Filter, workers int) (map[string]*filterGroup, int) {
	paramPos := make([]int, nParams)
	for i := range paramPos {
		paramPos[i] = i
	}
	headPos := make([]int, ext.Arity()-nParams)
	for i := range headPos {
		headPos[i] = nParams + i
	}
	tuples := ext.Tuples()

	// aggregate builds the group map for one range of extended tuples,
	// reusing one key buffer so only new groups allocate a key string.
	aggregate := func(lo, hi int) map[string]*filterGroup {
		groups := make(map[string]*filterGroup)
		var buf []byte
		for i := lo; i < hi; i++ {
			t := tuples[i]
			buf = t.AppendKeyOn(buf[:0], paramPos)
			g, ok := groups[string(buf)]
			if !ok {
				g = &filterGroup{params: t.Project(paramPos), acc: filter.NewGroup()}
				groups[string(buf)] = g
			}
			if g.done {
				continue
			}
			g.acc.Add(t.Project(headPos))
			if g.acc.Done() {
				g.done = true
			}
		}
		return groups
	}

	w := par.Resolve(workers)
	if len(tuples) < minParallelGroupRows {
		w = 1
	}
	if w <= 1 {
		return aggregate(0, len(tuples)), 1
	}

	parts := make([]map[string]*filterGroup, par.Chunks(len(tuples), w))
	par.Run(len(tuples), w, func(wi, lo, hi int) { parts[wi] = aggregate(lo, hi) })
	merged := parts[0]
	for _, part := range parts[1:] {
		for k, g := range part {
			mergeFilterGroup(merged, k, g)
		}
	}
	return merged, w
}

// mergeFilterGroup folds one group's partial state into the merged map
// under its key. The partial aggregates combine exactly when the two
// sides saw disjoint head tuples (GroupAcc.Merge's precondition); a
// group passes once either side short-circuited Done — monotone
// conditions cannot un-pass — or the combined aggregate passes.
func mergeFilterGroup(dst map[string]*filterGroup, k string, g *filterGroup) {
	m, ok := dst[k]
	if !ok {
		dst[k] = g
		return
	}
	if m.done {
		return
	}
	if g.done {
		m.done = true
		return
	}
	m.acc.Merge(g.acc)
	if m.acc.Done() {
		m.done = true
	}
}
