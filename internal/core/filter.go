// Package core implements query flocks, the paper's primary contribution:
// a generate-and-test mining model pairing a parametrized query (a union of
// extended conjunctive queries in Datalog) with a filter condition on each
// parameter assignment's query result (§2). The package provides
//
//   - the Flock model with parsing and validation,
//   - monotone filter conditions (COUNT/SUM/MIN/MAX, §5),
//   - a naive generate-and-test evaluator restating the definitional
//     semantics (the correctness oracle),
//   - a direct group-by evaluator,
//   - enumeration of the safe subqueries that generalize the a-priori
//     trick (§3), and
//   - FILTER-step query plans with the §4.2 legality rule and an executor.
package core

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// Filter is the executable form of a flock's filter condition. It is
// resolved against the flock's head shape: a named target column is mapped
// to a head-argument position once, at construction.
type Filter struct {
	spec    datalog.FilterSpec
	headPos int // position of the target in the head tuple; -1 for '*'
}

// NewFilter resolves a parsed filter condition against the head of the
// flock's (first) rule. Target names must match a head variable.
func NewFilter(spec datalog.FilterSpec, head *datalog.Atom) (Filter, error) {
	if err := spec.Validate(); err != nil {
		return Filter{}, err
	}
	if spec.Target == "" {
		return Filter{spec: spec, headPos: -1}, nil
	}
	for i, t := range head.Args {
		if v, ok := t.(datalog.Var); ok && string(v) == spec.Target {
			return Filter{spec: spec, headPos: i}, nil
		}
	}
	return Filter{}, fmt.Errorf("core: filter target %q is not a head variable of %s", spec.Target, head)
}

// Spec returns the parsed condition.
func (f Filter) Spec() datalog.FilterSpec { return f.spec }

// HeadPos returns the head-argument position the aggregate targets, or -1
// when the aggregate ranges over whole answer tuples ('*').
func (f Filter) HeadPos() int { return f.headPos }

// Monotone reports whether the condition is monotone (§5); only monotone
// filters admit the a-priori subquery optimization.
func (f Filter) Monotone() bool { return f.spec.Monotone() }

// String renders the condition.
func (f Filter) String() string { return f.spec.String() }

// PassesEmpty reports whether an empty query result satisfies the
// condition. A flock whose filter passes on the empty result has an
// infinite answer (every parameter assignment qualifies), so evaluators
// reject such filters.
func (f Filter) PassesEmpty() bool {
	acc := f.NewGroup()
	return acc.Passes()
}

// NewGroup returns a fresh accumulator for one parameter assignment's
// query result. Feed it the distinct head tuples of the result; Passes
// reports the condition. For monotone conditions, Done reports that the
// outcome can no longer change, allowing the caller to short-circuit.
func (f Filter) NewGroup() GroupAcc {
	switch f.spec.Agg {
	case datalog.AggCount:
		if f.headPos < 0 {
			return &countAcc{filter: f}
		}
		//lint:ignore DL005 countDistinctAcc.Add keys by Normalize()
		return &countDistinctAcc{filter: f, seen: make(map[storage.Value]struct{})}
	case datalog.AggSum:
		return &sumAcc{filter: f}
	case datalog.AggMin:
		return &minMaxAcc{filter: f, min: true}
	case datalog.AggMax:
		return &minMaxAcc{filter: f, min: false}
	default:
		panic(fmt.Sprintf("core: unknown aggregate %v", f.spec.Agg))
	}
}

// GroupAcc accumulates one group's head tuples and decides the filter.
type GroupAcc interface {
	// Add feeds one distinct head tuple of the group's query result.
	Add(head storage.Tuple)
	// Passes reports whether the condition currently holds.
	Passes() bool
	// Done reports that further Adds cannot change Passes (monotone
	// short-circuit); always false for non-monotone conditions.
	Done() bool
	// Merge folds another accumulator of the same filter into this one.
	// The partial aggregates combine exactly when the two accumulators saw
	// disjoint sets of head tuples — which the parallel group-by
	// guarantees: the extended result is a set, so within one group
	// (fixed parameter prefix) every row projects to a different head
	// tuple, and range partitions therefore feed disjoint head tuples. A
	// merged group passes when either part short-circuited Done (monotone:
	// more tuples cannot un-pass it) or the combined aggregate passes.
	Merge(other GroupAcc)
}

func (f Filter) compare(agg storage.Value) bool {
	return f.spec.Op.Eval(agg, f.spec.Threshold)
}

// countAcc implements COUNT(answer(*)).
type countAcc struct {
	filter Filter
	n      int64
}

func (a *countAcc) Add(storage.Tuple) { a.n++ }
func (a *countAcc) Passes() bool      { return a.filter.compare(storage.Int(a.n)) }
func (a *countAcc) Done() bool        { return a.filter.Monotone() && a.Passes() }
func (a *countAcc) Merge(other GroupAcc) {
	a.n += other.(*countAcc).n
}

// countDistinctAcc implements COUNT(answer.Col): distinct values of one
// head column. Values are normalized before keying so the count respects
// semantic equality — Int(1) and Float(1) are one value, not two (they
// compare Equal and share a join key everywhere else in the engine).
type countDistinctAcc struct {
	filter Filter
	//lint:ignore DL005 Add keys by Normalize(), so Equal values share a slot
	seen map[storage.Value]struct{}
}

func (a *countDistinctAcc) Add(head storage.Tuple) {
	a.seen[head[a.filter.headPos].Normalize()] = struct{}{}
}
func (a *countDistinctAcc) Passes() bool {
	return a.filter.compare(storage.Int(int64(len(a.seen))))
}
func (a *countDistinctAcc) Done() bool { return a.filter.Monotone() && a.Passes() }
func (a *countDistinctAcc) Merge(other GroupAcc) {
	for v := range other.(*countDistinctAcc).seen {
		a.seen[v] = struct{}{}
	}
}

// sumAcc implements SUM(answer.Col) over the distinct head tuples. The §5
// monotonicity argument assumes non-negative weights. Done never fires for
// SUM: a short-circuit decision taken mid-stream is unsound because a
// negative weight arriving later — or sitting in another worker's partition
// of the same group — can drag the sum back below the threshold, making the
// verdict depend on tuple order and worker count. (COUNT/MIN/MAX do not
// have this failure mode: their aggregates move in one direction no matter
// what arrives next.)
type sumAcc struct {
	filter   Filter
	sum      float64
	sawNeg   bool
	sawValue bool
}

func (a *sumAcc) Add(head storage.Tuple) {
	v := head[a.filter.headPos]
	f := v.AsFloat()
	if f < 0 {
		a.sawNeg = true
	}
	a.sum += f
	a.sawValue = true
}
func (a *sumAcc) Passes() bool {
	if !a.sawValue {
		return false // SUM over an empty result is undefined, not 0
	}
	return a.filter.compare(storage.Float(a.sum))
}
func (a *sumAcc) Done() bool { return false }
func (a *sumAcc) Merge(other GroupAcc) {
	o := other.(*sumAcc)
	a.sum += o.sum
	a.sawNeg = a.sawNeg || o.sawNeg
	a.sawValue = a.sawValue || o.sawValue
}

// minMaxAcc implements MIN/MAX(answer.Col).
type minMaxAcc struct {
	filter Filter
	min    bool
	cur    storage.Value
	has    bool
}

func (a *minMaxAcc) Add(head storage.Tuple) {
	v := head[a.filter.headPos]
	if !a.has {
		a.cur, a.has = v, true
		return
	}
	c := v.Compare(a.cur)
	if a.min && c < 0 || !a.min && c > 0 {
		a.cur = v
	}
}
func (a *minMaxAcc) Passes() bool {
	if !a.has {
		return false
	}
	return a.filter.compare(a.cur)
}
func (a *minMaxAcc) Done() bool { return a.filter.Monotone() && a.Passes() }
func (a *minMaxAcc) Merge(other GroupAcc) {
	o := other.(*minMaxAcc)
	if !o.has {
		return
	}
	if !a.has {
		a.cur, a.has = o.cur, true
		return
	}
	c := o.cur.Compare(a.cur)
	if a.min && c < 0 || !a.min && c > 0 {
		a.cur = o.cur
	}
}
