package core

import (
	"strings"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// fig5Plan builds the paper's Fig. 5 plan for the medical flock:
// pre-filter symptoms (okS) and medicines (okM), then run the full query
// with both step relations joined in.
func fig5Plan(t *testing.T, f *Flock) *Plan {
	t.Helper()
	okS, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"s"})
	if !ok {
		t.Fatal("no okS subquery")
	}
	okM, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"m"})
	if !ok {
		t.Fatal("no okM subquery")
	}
	stepS := FilterStep{Name: "okS", Params: []datalog.Param{"s"}, Query: datalog.Union{okS.Rule}}
	stepM := FilterStep{Name: "okM", Params: []datalog.Param{"m"}, Query: datalog.Union{okM.Rule}}
	final := FinalStep(f, "ok", stepS, stepM)
	plan, err := NewPlan(f, []FilterStep{stepS, stepM, final})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestFig5PlanValidatesAndRenders(t *testing.T) {
	f := MustParse(fig3Src)
	plan := fig5Plan(t, f)
	out := plan.String()
	for _, want := range []string{
		"okS($s) := FILTER($s,",
		"okM($m) := FILTER($m,",
		"ok($m,$s) := FILTER(($m,$s),",
		"COUNT(answer.P) >= 2",
		"okS($s)",
		"okM($m)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFig5PlanExecutesEqualToDirect(t *testing.T) {
	f := MustParse(fig3Src)
	plan := fig5Plan(t, f)
	db := medicalDB()
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Fatalf("plan answer differs:\nplan:\n%s\ndirect:\n%s", res.Answer.Dump(), direct.Dump())
	}
	if len(res.Steps) != 3 {
		t.Fatalf("step stats = %v", res.Steps)
	}
	// okS keeps fever and rash (3 patients each); drops cough (1 patient).
	if res.Steps[0].Rows != 2 {
		t.Errorf("okS rows = %d, want 2", res.Steps[0].Rows)
	}
	// okM keeps drugA (3 patients); drops drugB (1).
	if res.Steps[1].Rows != 1 {
		t.Errorf("okM rows = %d, want 1", res.Steps[1].Rows)
	}
	if !strings.Contains(res.String(), "answer: 1 rows") {
		t.Errorf("result summary: %s", res)
	}
}

func TestTrivialPlanEqualsDirect(t *testing.T) {
	for _, src := range []string{fig2Src, fig3Src} {
		f := MustParse(src)
		db := basketsDB()
		if src == fig3Src {
			db = medicalDB()
		}
		plan := TrivialPlan(f)
		if err := plan.Validate(); err != nil {
			t.Fatalf("trivial plan invalid: %v", err)
		}
		res, err := plan.Execute(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := f.Eval(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answer.Equal(direct) {
			t.Errorf("trivial plan differs from direct")
		}
	}
}

func TestPlanFromSpecFig5(t *testing.T) {
	f := MustParse(fig3Src)
	src := `
	okS($s) := FILTER($s,
	    answer(P) :- exhibits(P,$s),
	    COUNT(answer.P) >= 2
	);
	okM($m) := FILTER($m,
	    answer(P) :- treatments(P,$m),
	    COUNT(answer.P) >= 2
	);
	ok($s,$m) := FILTER(($s,$m),
	    answer(P) :- okS($s) AND okM($m) AND exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s),
	    COUNT(answer.P) >= 2
	);`
	spec, err := datalog.ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSpec(f, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(medicalDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(medicalDB(), nil)
	if !res.Answer.Equal(direct) {
		t.Error("parsed plan result differs from direct")
	}
}

func TestPlanFromSpecWrongFilter(t *testing.T) {
	f := MustParse(fig3Src)
	src := `
	okS($s) := FILTER($s,
	    answer(P) :- exhibits(P,$s),
	    COUNT(answer.P) >= 99
	);
	ok($s,$m) := FILTER(($s,$m),
	    answer(P) :- okS($s) AND exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s),
	    COUNT(answer.P) >= 2
	);`
	spec, err := datalog.ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanFromSpec(f, spec); err == nil || !strings.Contains(err.Error(), "legality rule 1") {
		t.Errorf("expected legality-rule-1 error, got %v", err)
	}
}

func TestPlanValidationErrors(t *testing.T) {
	f := MustParse(fig3Src)
	okS, _ := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"s"})
	stepS := FilterStep{Name: "okS", Params: []datalog.Param{"s"}, Query: datalog.Union{okS.Rule}}

	mustFail := func(name string, steps []FilterStep, wantMsg string) {
		t.Helper()
		_, err := NewPlan(f, steps)
		if err == nil {
			t.Errorf("%s: expected error", name)
			return
		}
		if wantMsg != "" && !strings.Contains(err.Error(), wantMsg) {
			t.Errorf("%s: error %q missing %q", name, err, wantMsg)
		}
	}

	mustFail("empty plan", nil, "no steps")

	// Final step must not delete subgoals.
	mustFail("non-final last step", []FilterStep{stepS}, "")

	// Duplicate step names.
	final := FinalStep(f, "okS", stepS)
	mustFail("duplicate name", []FilterStep{stepS, final}, "defined twice")

	// Step name colliding with a base relation.
	badS := stepS
	badS.Name = "exhibits"
	mustFail("base collision", []FilterStep{badS, FinalStep(f, "ok", badS)}, "collides")

	// Step whose query is not derived from the flock.
	alien, _ := datalog.ParseRule("answer(P) :- somewhere(P,$s)")
	mustFail("alien subgoal", []FilterStep{
		{Name: "bad", Params: []datalog.Param{"s"}, Query: datalog.Union{alien}},
		FinalStep(f, "ok"),
	}, "not derived")

	// Step params not matching its query.
	wrongParams := FilterStep{Name: "okX", Params: []datalog.Param{"m"}, Query: datalog.Union{okS.Rule}}
	mustFail("wrong params", []FilterStep{wrongParams, FinalStep(f, "ok")}, "declares parameters")

	// Unsafe deletion inside a step: keeping NOT causes without its
	// binding subgoals.
	unsafe := f.Query[0].DeleteSubgoals(0, 1) // keep diagnoses + NOT causes? positions: 0 exhibits,1 treatments,2 diagnoses,3 NOT causes
	_ = unsafe
	unsafeRule, _ := datalog.ParseRule("answer(P) :- diagnoses(P,D) AND NOT causes(D,$s)")
	mustFail("unsafe step", []FilterStep{
		{Name: "bad", Params: []datalog.Param{"s"}, Query: datalog.Union{unsafeRule}},
		FinalStep(f, "ok"),
	}, "unsafe")

	// Final step with wrong parameter set.
	mustFail("final wrong params", []FilterStep{
		stepS,
		{Name: "ok", Params: []datalog.Param{"s"}, Query: datalog.Union{f.Query[0].Clone()}},
	}, "")

	// Referencing a later (not prior) step.
	finalRefsLater := FinalStep(f, "ok", FilterStep{Name: "okLater", Params: []datalog.Param{"s"}})
	mustFail("forward reference", []FilterStep{finalRefsLater}, "")

	// Negating a step relation.
	negRef := f.Query[0].Clone()
	negAtom := datalog.NewAtom("okS", datalog.Param("s"))
	negAtom.Negated = true
	negRef.Body = append(negRef.Body, negAtom)
	mustFail("negated step ref", []FilterStep{
		stepS,
		{Name: "ok", Params: f.Params, Query: datalog.Union{negRef}},
	}, "negates")
}

func TestPlanRequiresMonotoneFilter(t *testing.T) {
	// A MIN >= filter is anti-monotone; plans must be rejected.
	src := `
QUERY:
answer(B,W) :- baskets(B,$1) AND importance(B,W)
FILTER:
MIN(answer.W) >= 3`
	f := MustParse(src)
	_, err := NewPlan(f, []FilterStep{{Name: "ok", Params: f.Params, Query: f.Query}})
	if err == nil || !strings.Contains(err.Error(), "monotone") {
		t.Errorf("expected monotonicity error, got %v", err)
	}
}

// TestFig7CascadePlan builds the n+1-step cascade of Fig. 7 for the path
// flock of Fig. 6 (n = 2) and checks it validates and executes to the
// same answer as direct evaluation.
func TestFig7CascadePlan(t *testing.T) {
	src := `
QUERY:
answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2)
FILTER:
COUNT(answer.X) >= 2`
	f := MustParse(src)

	// Steps ok0, ok1, ok2: prefixes of increasing length, each referencing
	// the previous step.
	r := f.Query[0]
	var steps []FilterStep
	var prev *FilterStep
	for k := 1; k <= len(r.Body); k++ {
		var drop []int
		for i := k; i < len(r.Body); i++ {
			drop = append(drop, i)
		}
		sub := datalog.Union{r.DeleteSubgoals(drop...)}
		if prev != nil {
			sub = WithStepRefs(sub, *prev)
		}
		name := "ok" + string(rune('0'+k-1))
		if k == len(r.Body) {
			name = "ok"
		}
		step := FilterStep{Name: name, Params: f.Params, Query: sub}
		steps = append(steps, step)
		prev = &steps[len(steps)-1]
	}
	plan, err := NewPlan(f, steps)
	if err != nil {
		t.Fatal(err)
	}

	// A small graph: node 1 fans out to 2,3 which chain onward; node 9 has
	// fanout but no length-3 paths.
	db := storage.NewDatabase()
	arc := storage.NewRelation("arc", "From", "To")
	edges := [][2]int64{
		{1, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 7},
		{9, 10}, {9, 11},
	}
	for _, e := range edges {
		arc.InsertValues(storage.Int(e[0]), storage.Int(e[1]))
	}
	db.Add(arc)

	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Fatalf("cascade differs:\nplan:\n%s\ndirect:\n%s", res.Answer.Dump(), direct.Dump())
	}
	// ok0 admits nodes with >= 2 successors: 1 and 9. ok1 requires the
	// successors to have successors: only 1. (threshold 2)
	if res.Steps[0].Rows != 2 {
		t.Errorf("ok0 rows = %d, want 2", res.Steps[0].Rows)
	}
	if res.Steps[1].Rows != 1 {
		t.Errorf("ok1 rows = %d, want 1", res.Steps[1].Rows)
	}
}

func TestExecuteDoesNotMutateDatabase(t *testing.T) {
	f := MustParse(fig3Src)
	plan := fig5Plan(t, f)
	db := medicalDB()
	before := len(db.Names())
	if _, err := plan.Execute(db, nil); err != nil {
		t.Fatal(err)
	}
	if len(db.Names()) != before {
		t.Errorf("Execute registered relations in the caller's database: %v", db.Names())
	}
	if db.Has("okS") || db.Has("ok") {
		t.Error("step relations leaked")
	}
}
