package core

import (
	"fmt"
	"sort"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/storage"
)

// This file implements the naive generate-and-test evaluator, which
// restates the flock semantics of §2 literally: "trying all [parameter]
// assignments in the query, evaluating the query, and seeing whether the
// result passes the filter test". It is exponentially slower than the
// direct evaluator and exists as the correctness oracle the optimized
// strategies are property-tested against, exactly as the paper frames it
// ("of course there are often more efficient ways to compute the meaning
// of a query flock").

// NaiveLimit bounds the number of candidate assignments EvalNaive will
// enumerate before giving up, protecting tests from accidental blowups.
const NaiveLimit = 1_000_000

// EvalNaive computes the flock's answer by enumerating candidate parameter
// assignments and evaluating the instantiated query for each one.
//
// Candidates for a parameter are the values found in the database columns
// where the parameter appears in a positive subgoal; any assignment outside
// that set yields an empty query result, which cannot pass the filter
// (PassesEmpty is rejected at construction of the evaluation), so the
// enumeration is complete.
func (f *Flock) EvalNaive(db *storage.Database) (*storage.Relation, error) {
	return f.EvalNaiveOpts(db, nil)
}

// EvalNaiveOpts is EvalNaive under EvalOptions: the request context, wall
// clock, and tuple/row budgets flow through the shared gate into every
// per-assignment query evaluation, and the enumeration itself checks the
// gate between assignments — so a served naive query can be canceled and
// budgeted like every other strategy instead of running to completion.
// Answers are identical to EvalNaive whenever no limit fires.
func (f *Flock) EvalNaiveOpts(db *storage.Database, opts *EvalOptions) (*storage.Relation, error) {
	if f.Filter.PassesEmpty() {
		return nil, fmt.Errorf("core: filter %s accepts the empty result; the flock's answer would be infinite", f.Filter)
	}
	if err := f.CheckDatabase(db); err != nil {
		return nil, err
	}
	opts = opts.withGate() // views and every assignment share one clock/budget
	db, err := f.MaterializeViews(db, opts)
	if err != nil {
		return nil, err
	}

	candidates, err := paramCandidates(db, f.Params, f.Query)
	if err != nil {
		return nil, err
	}
	total := 1
	for _, c := range candidates {
		total *= len(c)
		if total > NaiveLimit {
			return nil, fmt.Errorf("core: naive evaluation needs more than %d assignments", NaiveLimit)
		}
	}

	gate := opts.gate()
	out := storage.NewRelation("flock", f.ParamColumns()...)
	assignment := make(datalog.Substitution, len(f.Params))
	tuple := make(storage.Tuple, len(f.Params))
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(f.Params) {
			if err := gate.Check(); err != nil {
				return err
			}
			pass, err := f.testAssignment(db, assignment, opts)
			if err != nil {
				return err
			}
			if pass {
				out.Insert(tuple.Clone())
				if err := gate.CheckOutput(out.Len()); err != nil {
					return err
				}
			}
			return nil
		}
		for _, v := range candidates[i] {
			assignment[f.Params[i]] = datalog.C(v)
			tuple[i] = v
			if err := enumerate(i + 1); err != nil {
				return err
			}
		}
		delete(assignment, f.Params[i])
		return nil
	}
	if err := enumerate(0); err != nil {
		return nil, err
	}
	return out, nil
}

// testAssignment instantiates every rule with the assignment, evaluates
// the union (under the shared gate, so cancellation and the tuple budget
// reach into each per-assignment evaluation), and applies the filter.
func (f *Flock) testAssignment(db *storage.Database, s datalog.Substitution, opts *EvalOptions) (bool, error) {
	acc := f.Filter.NewGroup()
	seen := make(map[string]struct{})
	for _, r := range f.Query {
		res, err := eval.EvalGround(db, r.Substitute(s), opts.subquery().evalOpts())
		if err != nil {
			return false, err
		}
		for _, t := range res.Tuples() {
			// Distinct across the union: a head tuple contributed by two
			// rules counts once (set semantics, §2.3).
			k := t.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			acc.Add(t)
			if acc.Done() {
				return true, nil
			}
		}
	}
	return acc.Passes(), nil
}

// paramCandidates returns, per parameter (in params order), the sorted set
// of candidate values: the union over rules of the values in the columns
// where the parameter occurs positively.
func paramCandidates(db *storage.Database, params []datalog.Param, query datalog.Union) ([][]storage.Value, error) {
	//lint:ignore DL005 candidate keys are Normalize()d at the insertion below
	sets := make([]map[storage.Value]struct{}, len(params))
	index := make(map[datalog.Param]int, len(params))
	for i, p := range params {
		//lint:ignore DL005 candidate keys are Normalize()d at the insertion below
		sets[i] = make(map[storage.Value]struct{})
		index[p] = i
	}
	for _, r := range query {
		for _, a := range r.PositiveAtoms() {
			src, err := db.Source(a.Pred)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			// Collect the positions where parameters occur, then stream the
			// relation once for all of them.
			var paramPos [][2]int // (argPos, param index)
			for argPos, t := range a.Args {
				if p, isParam := t.(datalog.Param); isParam {
					paramPos = append(paramPos, [2]int{argPos, index[p]})
				}
			}
			if len(paramPos) == 0 {
				continue
			}
			err = storage.ForEach(src.Scan(), func(tuple storage.Tuple) error {
				for _, pp := range paramPos {
					// Normalize so Equal candidates (Int(1), Float(1))
					// collapse to one assignment instead of enumerating
					// the same group twice.
					sets[pp[1]][tuple[pp[0]].Normalize()] = struct{}{}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}
	out := make([][]storage.Value, len(params))
	for i, set := range sets {
		vals := make([]storage.Value, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		// Deterministic order for reproducible failures.
		sortValues(vals)
		out[i] = vals
	}
	return out, nil
}

func sortValues(vs []storage.Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
