package core

import (
	"math/rand"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// randomExt builds a random extended-answer relation (params..., head...)
// large enough to cross minParallelGroupRows, with group sizes spread so
// some groups pass, some fail, and monotone filters short-circuit mid-
// partition. Head values are non-negative so SUM stays monotone (the
// order-dependence of short-circuited sums over negative weights is a
// property of the sequential evaluator too, not of the parallel merge).
func randomExt(rng *rand.Rand, nParams int) *storage.Relation {
	cols := make([]string, 0, nParams+2)
	for i := 0; i < nParams; i++ {
		cols = append(cols, string(rune('p'+i)))
	}
	cols = append(cols, "H1", "H2")
	ext := storage.NewRelation("ext", cols...)
	for i := 0; i < 3_000; i++ {
		tu := make(storage.Tuple, 0, len(cols))
		for j := 0; j < nParams; j++ {
			tu = append(tu, storage.Int(int64(rng.Intn(40))))
		}
		tu = append(tu, storage.Int(int64(rng.Intn(50))), storage.Int(int64(rng.Intn(8))))
		ext.Insert(tu)
	}
	return ext
}

func mustFilter(t *testing.T, spec datalog.FilterSpec, nParams int) Filter {
	t.Helper()
	// Head shape matching randomExt: the filter target resolves against the
	// rule head (H1, H2).
	head := &datalog.Atom{Pred: "answer", Args: []datalog.Term{datalog.Var("H1"), datalog.Var("H2")}}
	_ = nParams
	f, err := NewFilter(spec, head)
	if err != nil {
		t.Fatalf("NewFilter(%v): %v", spec, err)
	}
	return f
}

// TestGroupAndFilterWorkersMatchesSequential sweeps every aggregate kind —
// monotone and non-monotone, short-circuiting and not — across worker
// counts on randomized extended relations. The parallel merge must
// reproduce the sequential answer exactly.
func TestGroupAndFilterWorkersMatchesSequential(t *testing.T) {
	specs := []datalog.FilterSpec{
		{Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(5)},               // COUNT(*) monotone
		{Agg: datalog.AggCount, Target: "H1", Op: datalog.Ge, Threshold: storage.Int(4)}, // COUNT(col) monotone
		{Agg: datalog.AggCount, Target: "H1", Op: datalog.Lt, Threshold: storage.Int(6)}, // non-monotone
		{Agg: datalog.AggSum, Target: "H2", Op: datalog.Ge, Threshold: storage.Int(30)},  // SUM monotone (non-negative)
		{Agg: datalog.AggSum, Target: "H2", Op: datalog.Le, Threshold: storage.Int(40)},  // SUM non-monotone
		{Agg: datalog.AggMin, Target: "H1", Op: datalog.Le, Threshold: storage.Int(3)},   // MIN monotone
		{Agg: datalog.AggMax, Target: "H1", Op: datalog.Ge, Threshold: storage.Int(45)},  // MAX monotone
		{Agg: datalog.AggMax, Target: "H2", Op: datalog.Lt, Threshold: storage.Int(7)},   // MAX non-monotone
	}
	nonEmpty := 0
	for seed := int64(0); seed < 3; seed++ {
		for _, nParams := range []int{1, 2} {
			ext := randomExt(rand.New(rand.NewSource(seed)), nParams)
			for _, spec := range specs {
				f := mustFilter(t, spec, nParams)
				want := GroupAndFilter(ext, nParams, f, "flock")
				if want.Len() > 0 {
					nonEmpty++
				}
				for _, w := range []int{2, 3, 8} {
					got := GroupAndFilterWorkers(ext, nParams, f, "flock", w)
					if !got.Equal(want) {
						t.Fatalf("seed %d params %d %v workers=%d: %d groups pass, want %d",
							seed, nParams, spec, w, got.Len(), want.Len())
					}
				}
			}
		}
	}
	// Some combinations legitimately pass no group (tight non-monotone
	// cutoffs); the sweep as a whole must not be vacuous.
	if nonEmpty < 10 {
		t.Fatalf("only %d non-empty cases across the sweep; thresholds too tight", nonEmpty)
	}
}

// TestGroupAndFilterWorkersSmallInput pins the sequential fallback: inputs
// below the partitioning threshold must take the workers=1 path and still
// agree, including the empty relation.
func TestGroupAndFilterWorkersSmallInput(t *testing.T) {
	f := mustFilter(t, datalog.FilterSpec{
		Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(2),
	}, 1)
	ext := storage.NewRelation("ext", "p", "H1", "H2")
	for i := 0; i < 10; i++ {
		ext.InsertValues(storage.Int(int64(i%3)), storage.Int(int64(i)), storage.Int(1))
	}
	want := GroupAndFilter(ext, 1, f, "flock")
	for _, w := range []int{0, 2, 8} {
		got := GroupAndFilterWorkers(ext, 1, f, "flock", w)
		if !got.Equal(want) {
			t.Fatalf("workers=%d on small input: %d vs %d", w, got.Len(), want.Len())
		}
	}
	empty := storage.NewRelation("ext", "p", "H1", "H2")
	if got := GroupAndFilterWorkers(empty, 1, f, "flock", 4); got.Len() != 0 {
		t.Fatalf("empty input produced %d groups", got.Len())
	}
}

// TestGroupAccMerge exercises every accumulator's Merge directly: feeding
// a tuple set through one accumulator must equal feeding a split of it
// through two and merging.
func TestGroupAccMerge(t *testing.T) {
	specs := []datalog.FilterSpec{
		{Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(3)},
		{Agg: datalog.AggCount, Target: "H1", Op: datalog.Ge, Threshold: storage.Int(3)},
		{Agg: datalog.AggSum, Target: "H1", Op: datalog.Ge, Threshold: storage.Int(10)},
		{Agg: datalog.AggMin, Target: "H1", Op: datalog.Le, Threshold: storage.Int(2)},
		{Agg: datalog.AggMax, Target: "H1", Op: datalog.Ge, Threshold: storage.Int(8)},
	}
	rng := rand.New(rand.NewSource(42))
	for _, spec := range specs {
		f := mustFilter(t, spec, 1)
		tuples := make([]storage.Tuple, 12)
		for i := range tuples {
			tuples[i] = storage.Tuple{storage.Int(int64(rng.Intn(10))), storage.Int(int64(i))}
		}
		whole := f.NewGroup()
		for _, tu := range tuples {
			whole.Add(tu)
		}
		for split := 0; split <= len(tuples); split += 4 {
			a, b := f.NewGroup(), f.NewGroup()
			for _, tu := range tuples[:split] {
				a.Add(tu)
			}
			for _, tu := range tuples[split:] {
				b.Add(tu)
			}
			a.Merge(b)
			if a.Passes() != whole.Passes() {
				t.Fatalf("%v split %d: merged Passes()=%v, whole=%v",
					spec, split, a.Passes(), whole.Passes())
			}
		}
	}
}
