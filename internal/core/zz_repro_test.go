package core

import (
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

func TestReproSumNegParallel(t *testing.T) {
	spec := datalog.FilterSpec{Agg: datalog.AggSum, Target: "V", Op: datalog.Ge, Threshold: storage.Int(10)}
	head := &datalog.Atom{Pred: "a", Args: []datalog.Term{datalog.Var("P"), datalog.Var("V")}}
	f, err := NewFilter(spec, head)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("monotone=%v", f.Monotone())

	ext := storage.NewRelation("ext", "P", "V")
	ext.InsertValues(storage.Str("g"), storage.Int(-100))
	for i := 0; i < 300; i++ {
		ext.InsertValues(storage.Int(int64(i)), storage.Int(1))
	}
	ext.InsertValues(storage.Str("g"), storage.Int(12))

	seq := GroupAndFilterWorkers(ext, 1, f, "out", 1)
	par := GroupAndFilterWorkers(ext, 1, f, "out", 2)
	t.Logf("seq contains g: %v, par(2) contains g: %v",
		seq.Contains(storage.Tuple{storage.Str("g")}), par.Contains(storage.Tuple{storage.Str("g")}))
	if seq.Len() != par.Len() {
		t.Fatalf("divergence: seq=%d rows, par=%d rows", seq.Len(), par.Len())
	}
}
