package core

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// testFilter builds a resolved filter over a head answer(B).
func testFilter(t *testing.T, spec datalog.FilterSpec) Filter {
	t.Helper()
	head := &datalog.Atom{Pred: "answer", Args: []datalog.Term{datalog.Var("B")}}
	f, err := NewFilter(spec, head)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	return f
}

// allAggFilters returns one filter per accumulator kind, each resolved
// against a head answer(B) — the cluster merge path must handle all four.
func allAggFilters(t *testing.T) map[string]Filter {
	t.Helper()
	return map[string]Filter{
		"count-star":     testFilter(t, datalog.FilterSpec{Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(2)}),
		"count-distinct": testFilter(t, datalog.FilterSpec{Agg: datalog.AggCount, Target: "B", Op: datalog.Ge, Threshold: storage.Int(2)}),
		"sum":            testFilter(t, datalog.FilterSpec{Agg: datalog.AggSum, Target: "B", Op: datalog.Ge, Threshold: storage.Int(5)}),
		"min":            testFilter(t, datalog.FilterSpec{Agg: datalog.AggMin, Target: "B", Op: datalog.Le, Threshold: storage.Int(3)}),
		"max":            testFilter(t, datalog.FilterSpec{Agg: datalog.AggMax, Target: "B", Op: datalog.Ge, Threshold: storage.Int(3)}),
	}
}

// feed builds a live group for filter and feeds it the given head values.
func feedGroup(f Filter, vals ...int64) *filterGroup {
	g := &filterGroup{params: storage.Tuple{storage.Str("p")}, acc: f.NewGroup()}
	for _, v := range vals {
		if g.done {
			break
		}
		g.acc.Add(storage.Tuple{storage.Int(v)})
		if g.acc.Done() {
			g.done = true
		}
	}
	return g
}

// TestMergeEmptyPartialIdentity is the S2 regression: merging the partial
// state of a shard whose partition matched no tuples of a group — a wire
// state with a zero aggregate — must leave the other side's verdict
// untouched, in both merge directions, for every accumulator kind. The
// empty partial travels through the GroupState round-trip exactly as a
// skewed shard map would produce it.
func TestMergeEmptyPartialIdentity(t *testing.T) {
	for kind, f := range allAggFilters(t) {
		t.Run(kind, func(t *testing.T) {
			for _, vals := range [][]int64{{}, {1}, {2, 3}, {1, 2, 3, 4}} {
				live := feedGroup(f, vals...)
				want := live.done || live.acc.Passes()

				// An "empty" partial: a GroupState carrying no aggregate
				// content, as decoded from the wire.
				empty := f.importGroupState(roundTrip(t, GroupState{Params: []string{`"p"`}}))

				dst := map[string]*filterGroup{}
				k := string(live.params.AppendKey(nil))
				mergeFilterGroup(dst, k, feedGroup(f, vals...))
				mergeFilterGroup(dst, k, empty)
				if got := dst[k].done || dst[k].acc.Passes(); got != want {
					t.Errorf("%s: live<-empty merge verdict = %v, want %v (vals %v)", kind, got, want, vals)
				}

				dst = map[string]*filterGroup{}
				mergeFilterGroup(dst, k, f.importGroupState(roundTrip(t, GroupState{Params: []string{`"p"`}})))
				mergeFilterGroup(dst, k, feedGroup(f, vals...))
				if got := dst[k].done || dst[k].acc.Passes(); got != want {
					t.Errorf("%s: empty<-live merge verdict = %v, want %v (vals %v)", kind, got, want, vals)
				}
			}
		})
	}
}

// roundTrip pushes a GroupState through its JSON wire form.
func roundTrip(t *testing.T, s GroupState) GroupState {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out GroupState
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

// TestImportGroupStateLiveMaps pins the nil-map hazard behind S2: an
// imported COUNT-distinct state must carry a live set (not the decode-zero
// nil map), so feeding it more tuples after a merge cannot panic.
func TestImportGroupStateLiveMaps(t *testing.T) {
	f := testFilter(t, datalog.FilterSpec{Agg: datalog.AggCount, Target: "B", Op: datalog.Ge, Threshold: storage.Int(3)})
	g := f.importGroupState(roundTrip(t, GroupState{Params: []string{`"p"`}}))
	g.acc.Add(storage.Tuple{storage.Int(7)}) // must not panic on a nil seen map
	other := feedGroup(f, 1, 2)
	g.acc.Merge(other.acc)
	if !g.acc.Passes() {
		t.Error("imported distinct state lost values across merge")
	}
}

// TestGroupStateRoundTrip: export → JSON → import must preserve every
// accumulator's verdict-relevant state exactly.
func TestGroupStateRoundTrip(t *testing.T) {
	for kind, f := range allAggFilters(t) {
		for _, vals := range [][]int64{{1}, {2, 3}, {1, 2, 3, 4}} {
			g := feedGroup(f, vals...)
			got := f.importGroupState(roundTrip(t, exportGroupState(g)))
			if got.done != g.done {
				t.Errorf("%s %v: done = %v, want %v", kind, vals, got.done, g.done)
				continue
			}
			if g.done {
				continue // done states ship no aggregate; nothing more to compare
			}
			if gp, wp := got.acc.Passes(), g.acc.Passes(); gp != wp {
				t.Errorf("%s %v: Passes = %v, want %v", kind, vals, gp, wp)
			}
			if !got.params.Equal(g.params) {
				t.Errorf("%s %v: params = %v, want %v", kind, vals, got.params, g.params)
			}
		}
	}
}

// TestMergeGroupStatesMatchesLocal is the sharding soundness core: for
// every accumulator kind, splitting a group's tuples across 1..4 parts —
// including empty parts — and merging the exported states must reproduce
// the unsharded verdict.
func TestMergeGroupStatesMatchesLocal(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5}
	splits := [][][]int64{
		{vals},
		{{1, 2}, {3, 4, 5}},
		{{}, vals, {}},
		{{1}, {}, {2, 3}, {4, 5}},
	}
	for kind, f := range allAggFilters(t) {
		local := feedGroup(f, vals...)
		want := local.done || local.acc.Passes()
		for si, split := range splits {
			parts := make([][]GroupState, len(split))
			for i, chunk := range split {
				if len(chunk) == 0 {
					parts[i] = nil // an empty shard ships no groups at all
					continue
				}
				parts[i] = []GroupState{roundTrip(t, exportGroupState(feedGroup(f, chunk...)))}
			}
			rel, groups, err := MergeGroupStates(f, "answer", []string{"$p"}, parts)
			if err != nil {
				t.Fatalf("%s split %d: %v", kind, si, err)
			}
			if got := rel.Len() == 1; got != want {
				t.Errorf("%s split %d: merged verdict = %v, want %v", kind, si, got, want)
			}
			if want && groups != 1 {
				t.Errorf("%s split %d: groups = %d, want 1", kind, si, groups)
			}
		}
	}
}

// TestEvalPartialGroupsDeterministic: the worker half must return states
// sorted by parameter literals, identically across repeated runs, and the
// merged relation must match the local evalFiltered answer bit for bit.
func TestEvalPartialGroupsDeterministic(t *testing.T) {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "b", "i")
	for b := 0; b < 6; b++ {
		for i := 0; i <= b; i++ {
			r.Insert(storage.Tuple{storage.Int(int64(b)), storage.Int(int64(i))})
		}
	}
	db.Add(r)

	fl := MustParse("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= 1\n")
	want, err := fl.Eval(db, nil)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}

	var first []GroupState
	for run := 0; run < 3; run++ {
		states, err := EvalPartialGroups(db, fl.Params, fl.Query, fl.Filter, &EvalOptions{Workers: 1 + run})
		if err != nil {
			t.Fatalf("EvalPartialGroups: %v", err)
		}
		if run == 0 {
			first = states
			continue
		}
		if !reflect.DeepEqual(states, first) {
			t.Fatalf("run %d states differ:\n%v\nvs\n%v", run, states, first)
		}
	}

	got, _, err := MergeGroupStates(fl.Filter, "flock", fl.ParamColumns(), [][]GroupState{first})
	if err != nil {
		t.Fatalf("MergeGroupStates: %v", err)
	}
	if !got.Equal(want) {
		t.Errorf("merged answer differs from local:\n%v\nvs\n%v", got, want)
	}
}

// TestEvalPartialGroupsRejectsInfinite mirrors evalFiltered's guard.
func TestEvalPartialGroupsRejectsInfinite(t *testing.T) {
	db := storage.NewDatabase()
	db.Add(storage.NewRelation("r", "b", "i"))
	fl := MustParse("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= 0\n")
	if _, err := EvalPartialGroups(db, fl.Params, fl.Query, fl.Filter, nil); err == nil {
		t.Error("expected the infinite-answer guard to fire")
	}
}

// TestFilterEvalHookSeesDirectEval: the cluster hook must intercept the
// direct strategy's FILTER computation, and its relation must be returned
// unchanged; handled=false must fall back to the local path.
func TestFilterEvalHookSeesDirectEval(t *testing.T) {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "b", "i")
	for b := 0; b < 4; b++ {
		for i := 0; i < 3; i++ {
			r.Insert(storage.Tuple{storage.Int(int64(b)), storage.Int(int64(i))})
		}
	}
	db.Add(r)
	fl := MustParse("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= 2\n")
	want, err := fl.Eval(db, nil)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}

	calls := 0
	hook := func(hdb *storage.Database, params []datalog.Param, query datalog.Union,
		filter Filter, name string, opts *EvalOptions) (*storage.Relation, bool, error) {
		calls++
		states, err := EvalPartialGroups(hdb, params, query, filter, opts)
		if err != nil {
			return nil, true, err
		}
		cols := make([]string, len(params))
		for i, p := range params {
			cols[i] = "$" + string(p)
		}
		rel, _, err := MergeGroupStates(filter, name, cols, [][]GroupState{states})
		return rel, true, err
	}
	got, err := fl.Eval(db, &EvalOptions{FilterEval: hook})
	if err != nil {
		t.Fatalf("Eval with hook: %v", err)
	}
	if calls != 1 {
		t.Fatalf("hook calls = %d, want 1", calls)
	}
	if !got.Equal(want) {
		t.Errorf("hooked answer differs:\n%v\nvs\n%v", got, want)
	}

	// A declining hook must leave the local answer untouched.
	declined, err := fl.Eval(db, &EvalOptions{
		FilterEval: func(*storage.Database, []datalog.Param, datalog.Union, Filter, string, *EvalOptions) (*storage.Relation, bool, error) {
			return nil, false, nil
		},
	})
	if err != nil {
		t.Fatalf("Eval with declining hook: %v", err)
	}
	if !declined.Equal(want) {
		t.Error("declining hook changed the answer")
	}
}

// TestFilterEvalHookErrorPropagates: a hook error must abort evaluation.
func TestFilterEvalHookErrorPropagates(t *testing.T) {
	db := storage.NewDatabase()
	db.Add(storage.NewRelation("r", "b", "i"))
	fl := MustParse("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= 2\n")
	wantErr := fmt.Errorf("shard 1 unreachable")
	_, err := fl.Eval(db, &EvalOptions{
		FilterEval: func(*storage.Database, []datalog.Param, datalog.Union, Filter, string, *EvalOptions) (*storage.Relation, bool, error) {
			return nil, true, wantErr
		},
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
}
