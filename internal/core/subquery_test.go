package core

import (
	"testing"

	"queryflocks/internal/datalog"
)

// TestEnumerateSubqueriesExample32 mirrors the paper's Example 3.2: the
// medical query has 14 nontrivial subgoal subsets of which 8 are safe.
func TestEnumerateSubqueriesExample32(t *testing.T) {
	f := MustParse(fig3Src)
	subs := EnumerateSubqueries(f.Query[0])
	if len(subs) != 8 {
		for _, s := range subs {
			t.Logf("  %s", s)
		}
		t.Fatalf("safe subqueries = %d, want 8", len(subs))
	}
	// The paper's four highlighted candidates, with their parameter sets.
	wantParams := map[string]string{
		"answer(P) :- exhibits(P,$s)":                                         "$s",
		"answer(P) :- treatments(P,$m)":                                       "$m",
		"answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)": "$s",
		"answer(P) :- exhibits(P,$s) AND treatments(P,$m)":                    "$m$s",
	}
	for _, s := range subs {
		if want, ok := wantParams[s.String()]; ok {
			if paramKey(s.Params) != want {
				t.Errorf("%s: params %v, want %s", s, s.Params, want)
			}
			delete(wantParams, s.String())
		}
	}
	for missing := range wantParams {
		t.Errorf("missing candidate subquery: %s", missing)
	}
}

func TestEnumerateSubqueriesOrdering(t *testing.T) {
	f := MustParse(fig2Src)
	subs := EnumerateSubqueries(f.Query[0])
	for i := 1; i < len(subs); i++ {
		if len(subs[i-1].Kept) > len(subs[i].Kept) {
			t.Fatal("subqueries not sorted by size")
		}
	}
	// The market-basket rule: subsets containing the comparison need both
	// params positive; enumerate and sanity check a few.
	// Safe: {b1}, {b2}, {b1,b2}, {b1,b2,cmp}... but proper subsets only, so
	// {b1,b2,cmp} (the full body) is excluded.
	if len(subs) != 3 {
		for _, s := range subs {
			t.Logf("  %s", s)
		}
		t.Fatalf("fig2 safe proper subqueries = %d, want 3", len(subs))
	}
}

func TestSubqueriesWithParams(t *testing.T) {
	f := MustParse(fig3Src)
	r := f.Query[0]
	s := SubqueriesWithParams(r, []datalog.Param{"s"})
	// $s-only subqueries: exhibits; exhibits+diagnoses;
	// exhibits+diagnoses+NOT causes. (exhibits+treatments has $m too.)
	if len(s) != 3 {
		for _, x := range s {
			t.Logf("  %s", x)
		}
		t.Fatalf("$s subqueries = %d, want 3", len(s))
	}
	min, ok := MinimalSubqueryForParams(r, []datalog.Param{"s"})
	if !ok || min.String() != "answer(P) :- exhibits(P,$s)" {
		t.Errorf("minimal $s subquery = %v", min)
	}
	min, ok = MinimalSubqueryForParams(r, []datalog.Param{"m"})
	if !ok || min.String() != "answer(P) :- treatments(P,$m)" {
		t.Errorf("minimal $m subquery = %v", min)
	}
	min, ok = MinimalSubqueryForParams(r, []datalog.Param{"s", "m"})
	if !ok || min.String() != "answer(P) :- exhibits(P,$s) AND treatments(P,$m)" {
		t.Errorf("minimal $s,$m subquery = %v", min)
	}
	if _, ok := MinimalSubqueryForParams(r, []datalog.Param{"zzz"}); ok {
		t.Error("unknown param should have no subquery")
	}
}

// TestUnionSubqueryExample33 reproduces Example 3.3: restricted to $1, the
// Fig. 4 union has essentially one safe subquery per rule.
func TestUnionSubqueryExample33(t *testing.T) {
	f := MustParse(fig4Src)
	u, err := UnionSubquery(f.Query, []datalog.Param{"1"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"answer(D) :- inTitle(D,$1)",
		"answer(A) :- inAnchor(A,$1)",
		"answer(A) :- link(A,D1,D2) AND inTitle(D2,$1)",
	}
	if len(u) != 3 {
		t.Fatalf("union subquery has %d rules", len(u))
	}
	for i, w := range want {
		if u[i].String() != w {
			t.Errorf("rule %d = %s, want %s", i, u[i], w)
		}
	}
	// Same by symmetry for $2.
	u2, err := UnionSubquery(f.Query, []datalog.Param{"2"})
	if err != nil {
		t.Fatal(err)
	}
	if u2[0].String() != "answer(D) :- inTitle(D,$2)" {
		t.Errorf("rule 0 for $2 = %s", u2[0])
	}
}

func TestUnionSubqueryFailure(t *testing.T) {
	f := MustParse(fig4Src)
	if _, err := UnionSubquery(f.Query, []datalog.Param{"nope"}); err == nil {
		t.Error("unknown param should fail")
	}
}

func TestParamSets(t *testing.T) {
	f := MustParse(fig3Src)
	sets := ParamSets(f.Query[0])
	// {$s}, {$m}, {$s,$m}: all three occur among safe subqueries.
	if len(sets) != 3 {
		t.Fatalf("param sets = %v", sets)
	}
	if len(sets[0]) != 1 || len(sets[1]) != 1 || len(sets[2]) != 2 {
		t.Errorf("param sets ordering = %v", sets)
	}
}

// TestSubqueryContainsOriginal ties §3.1 together end to end: every
// enumerated safe subquery, restricted to pure-CQ flocks, contains the
// original query (checked by the containment-mapping procedure).
func TestSubqueryContainsOriginal(t *testing.T) {
	pure, err := datalog.ParseRule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND items($1,C) AND items($2,C)")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range EnumerateSubqueries(pure) {
		ok, err := datalog.Contains(s.Rule, pure)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !ok {
			t.Errorf("subquery %s does not contain the original", s)
		}
	}
}
