package core

import (
	"strings"
	"testing"

	"queryflocks/internal/storage"
)

// multiDiseaseSrc is the §2.2 extension scenario: patients may have
// several diseases, so "unexplained symptom" must mean unexplained by ANY
// of the patient's diseases. The view allCaused(P,S) relates each patient
// to every symptom any of their diseases causes.
const multiDiseaseSrc = `
VIEWS:
allCaused(P,S) :- diagnoses(P,D) AND causes(D,S)
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    NOT allCaused(P,$s)
FILTER:
COUNT(answer.P) >= 2`

// multiDiseaseDB: patients 1..3 have BOTH flu (causes fever) and cold
// (causes cough); they exhibit fever, cough, and rash, and take drugA.
// Under the single-disease Fig. 3 flock, (fever, drugA) would wrongly
// surface (cold doesn't explain fever); with the view, only rash is
// unexplained.
func multiDiseaseDB() *storage.Database {
	db := storage.NewDatabase()
	diagnoses := storage.NewRelation("diagnoses", "Patient", "Disease")
	exhibits := storage.NewRelation("exhibits", "Patient", "Symptom")
	treatments := storage.NewRelation("treatments", "Patient", "Medicine")
	causes := storage.NewRelation("causes", "Disease", "Symptom")
	for _, rel := range []*storage.Relation{diagnoses, exhibits, treatments, causes} {
		db.Add(rel)
	}
	causes.InsertValues(storage.Str("flu"), storage.Str("fever"))
	causes.InsertValues(storage.Str("cold"), storage.Str("cough"))
	for p := int64(1); p <= 3; p++ {
		diagnoses.InsertValues(storage.Int(p), storage.Str("flu"))
		diagnoses.InsertValues(storage.Int(p), storage.Str("cold"))
		for _, s := range []string{"fever", "cough", "rash"} {
			exhibits.InsertValues(storage.Int(p), storage.Str(s))
		}
		treatments.InsertValues(storage.Int(p), storage.Str("drugA"))
	}
	return db
}

func TestViewFlockParsesAndRenders(t *testing.T) {
	f := MustParse(multiDiseaseSrc)
	if len(f.Views) != 1 || f.Views[0].Head.Pred != "allCaused" {
		t.Fatalf("views = %v", f.Views)
	}
	out := f.String()
	if !strings.Contains(out, "VIEWS:") || !strings.Contains(out, "allCaused(P,S) :- diagnoses(P,D) AND causes(D,S)") {
		t.Errorf("rendering:\n%s", out)
	}
	// Round trip.
	if _, err := Parse(out); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestViewFlockMultiDisease(t *testing.T) {
	f := MustParse(multiDiseaseSrc)
	db := multiDiseaseDB()
	if err := f.CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
	got, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only (drugA, rash): fever is explained by flu, cough by cold.
	if got.Len() != 1 || !got.Contains(storage.Tuple{storage.Str("drugA"), storage.Str("rash")}) {
		t.Fatalf("got:\n%s", got.Dump())
	}
	// Naive oracle agrees.
	naive, err := f.EvalNaive(db)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(got) {
		t.Errorf("naive differs:\n%s", naive.Dump())
	}
	// The single-disease Fig. 3 shape (without the view) would include
	// fever and cough: sanity-check the contrast.
	single := MustParse(`
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 2`)
	wrong, err := single.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wrong.Len() <= got.Len() {
		t.Errorf("single-disease flock should over-report on multi-disease data; got %d vs %d",
			wrong.Len(), got.Len())
	}
}

func TestViewFlockPlansAndDynamicAgree(t *testing.T) {
	f := MustParse(multiDiseaseSrc)
	db := multiDiseaseDB()
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := TrivialPlan(f)
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Error("trivial plan over view flock differs from direct")
	}
}

func TestUnionView(t *testing.T) {
	// A view defined by two rules (union view).
	src := `
VIEWS:
senior(P) :- people(P,S) AND S > 65
senior(P) :- vip(P)
QUERY:
answer(P) :- buys(P,$i) AND senior(P)
FILTER:
COUNT(answer.P) >= 2`
	f := MustParse(src)
	db := storage.NewDatabase()
	people := storage.NewRelation("people", "P", "Age")
	vip := storage.NewRelation("vip", "P")
	buys := storage.NewRelation("buys", "P", "Item")
	db.Add(people)
	db.Add(vip)
	db.Add(buys)
	people.InsertValues(storage.Int(1), storage.Int(70))
	people.InsertValues(storage.Int(2), storage.Int(30))
	people.InsertValues(storage.Int(3), storage.Int(40))
	vip.InsertValues(storage.Int(3))
	for _, p := range []int64{1, 2, 3} {
		buys.InsertValues(storage.Int(p), storage.Str("tea"))
	}
	got, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Seniors: 1 (age) and 3 (vip); both buy tea => tea qualifies.
	if got.Len() != 1 || !got.Contains(storage.Tuple{storage.Str("tea")}) {
		t.Fatalf("got:\n%s", got.Dump())
	}
}

func TestChainedViews(t *testing.T) {
	// A view referencing an earlier view.
	src := `
VIEWS:
parent(X,Y) :- father(X,Y)
grandparent(X,Z) :- parent(X,Y) AND parent(Y,Z)
QUERY:
answer(X) :- grandparent(X,$z)
FILTER:
COUNT(answer.X) >= 1`
	f := MustParse(src)
	db := storage.NewDatabase()
	father := storage.NewRelation("father", "X", "Y")
	father.InsertValues(storage.Str("a"), storage.Str("b"))
	father.InsertValues(storage.Str("b"), storage.Str("c"))
	db.Add(father)
	got, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(storage.Tuple{storage.Str("c")}) {
		t.Fatalf("got:\n%s", got.Dump())
	}
}

func TestStratifiedNegationAcrossViews(t *testing.T) {
	// A view may negate an earlier view (stratified negation): risky(P)
	// holds for patients with some symptom no disease of theirs causes.
	src := `
VIEWS:
allCaused(P,S) :- diagnoses(P,D) AND causes(D,S)
unexplained(P,S) :- exhibits(P,S) AND NOT allCaused(P,S)
QUERY:
answer(P) :- unexplained(P,$s) AND treatments(P,$m)
FILTER:
COUNT(answer.P) >= 2`
	f := MustParse(src)
	if len(f.Views) != 2 {
		t.Fatalf("views = %d", len(f.Views))
	}
	db := multiDiseaseDB()
	got, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same answer as the single-view formulation.
	single := MustParse(multiDiseaseSrc)
	want, err := single.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("stratified views differ:\ngot:\n%s\nwant:\n%s", got.Dump(), want.Dump())
	}
	// Naive oracle agrees too.
	naive, err := f.EvalNaive(db)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(got) {
		t.Error("naive disagrees on stratified views")
	}
}

func TestViewValidation(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"param in view", `
VIEWS:
v(P) :- r(P,$x)
QUERY:
answer(P) :- v(P) AND s(P,$y)
FILTER:
COUNT(answer.P) >= 1`, "parameter-free"},
		{"recursive view", `
VIEWS:
v(P) :- v(P)
QUERY:
answer(P) :- v(P) AND s(P,$y)
FILTER:
COUNT(answer.P) >= 1`, "recursive"},
		{"forward reference", `
VIEWS:
v(P) :- w(P)
w(P) :- r(P)
QUERY:
answer(P) :- v(P) AND s(P,$y)
FILTER:
COUNT(answer.P) >= 1`, "before it is defined"},
		{"unsafe view", `
VIEWS:
v(P,Q) :- r(P)
QUERY:
answer(P) :- v(P,Q) AND s(P,$y)
FILTER:
COUNT(answer.P) >= 1`, "unsafe"},
		{"constant head", `
VIEWS:
v(3) :- r(X)
QUERY:
answer(P) :- s(P,$y) AND v(Z)
FILTER:
COUNT(answer.P) >= 1`, "must be variables"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.wantErr)
		}
	}
}

func TestViewCollisionWithBaseRelation(t *testing.T) {
	src := `
VIEWS:
baskets(B,I) :- other(B,I)
QUERY:
answer(B) :- baskets(B,$1)
FILTER:
COUNT(answer.B) >= 1`
	f := MustParse(src)
	db := basketsDB() // already has a baskets relation
	other := storage.NewRelation("other", "B", "I")
	db.Add(other)
	if _, err := f.Eval(db, nil); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Errorf("expected collision error, got %v", err)
	}
}

func TestViewArityMismatchAcrossRules(t *testing.T) {
	views := MustParse(`
VIEWS:
v(X) :- r(X)
QUERY:
answer(X) :- v(X) AND s(X,$y)
FILTER:
COUNT(answer.X) >= 1`)
	_ = views
	// Two view rules with the same head predicate but different arity are
	// rejected at materialization.
	src := `
VIEWS:
v(X) :- r(X)
v(X,Y) :- s(X,Y)
QUERY:
answer(X) :- v(X) AND s(X,$y)
FILTER:
COUNT(answer.X) >= 1`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "X")
	s := storage.NewRelation("s", "X", "Y")
	r.InsertValues(storage.Int(1))
	s.InsertValues(storage.Int(1), storage.Int(2))
	db.Add(r)
	db.Add(s)
	if _, err := f.Eval(db, nil); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("expected arity error, got %v", err)
	}
}
