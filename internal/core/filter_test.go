package core

import (
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

func mkFilter(t *testing.T, src, headSrc string) Filter {
	t.Helper()
	spec, err := datalog.ParseFilter(src)
	if err != nil {
		t.Fatal(err)
	}
	head, err := datalog.ParseRule(headSrc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(spec, head.Head)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFilterTargetResolution(t *testing.T) {
	f := mkFilter(t, "COUNT(answer.B) >= 2", "answer(B) :- r(B)")
	if f.headPos != 0 {
		t.Errorf("headPos = %d", f.headPos)
	}
	f = mkFilter(t, "SUM(answer.W) >= 2", "answer(B,W) :- r(B,W)")
	if f.headPos != 1 {
		t.Errorf("headPos = %d", f.headPos)
	}
	f = mkFilter(t, "COUNT(answer(*)) >= 2", "answer(B) :- r(B)")
	if f.headPos != -1 {
		t.Errorf("star headPos = %d", f.headPos)
	}

	spec, _ := datalog.ParseFilter("COUNT(answer.Z) >= 2")
	head, _ := datalog.ParseRule("answer(B) :- r(B)")
	if _, err := NewFilter(spec, head.Head); err == nil {
		t.Error("unknown target should error")
	}
}

func feed(acc GroupAcc, tuples ...storage.Tuple) {
	for _, tp := range tuples {
		acc.Add(tp)
	}
}

func TestCountAccumulators(t *testing.T) {
	f := mkFilter(t, "COUNT(answer(*)) >= 2", "answer(B) :- r(B)")
	acc := f.NewGroup()
	if acc.Passes() || acc.Done() {
		t.Error("empty group should not pass")
	}
	feed(acc, storage.Tuple{storage.Int(1)})
	if acc.Passes() {
		t.Error("1 < 2 should not pass")
	}
	feed(acc, storage.Tuple{storage.Int(2)})
	if !acc.Passes() || !acc.Done() {
		t.Error("2 >= 2 should pass and be done (monotone)")
	}

	// Distinct counting by column.
	fd := mkFilter(t, "COUNT(answer.B) >= 2", "answer(B,W) :- r(B,W)")
	accd := fd.NewGroup()
	feed(accd,
		storage.Tuple{storage.Int(1), storage.Int(10)},
		storage.Tuple{storage.Int(1), storage.Int(20)}) // same B twice
	if accd.Passes() {
		t.Error("one distinct B should not pass")
	}
	feed(accd, storage.Tuple{storage.Int(2), storage.Int(10)})
	if !accd.Passes() {
		t.Error("two distinct Bs should pass")
	}
}

func TestSumAccumulator(t *testing.T) {
	f := mkFilter(t, "SUM(answer.W) >= 20", "answer(B,W) :- r(B,W)")
	acc := f.NewGroup()
	if acc.Passes() {
		t.Error("SUM over empty must not pass")
	}
	feed(acc, storage.Tuple{storage.Int(1), storage.Int(15)})
	if acc.Passes() || acc.Done() {
		t.Error("15 < 20")
	}
	feed(acc, storage.Tuple{storage.Int(2), storage.Float(5.5)})
	if !acc.Passes() {
		t.Error("20.5 >= 20 should pass")
	}
	if acc.Done() {
		t.Error("SUM must never short-circuit: a later negative weight could fail it")
	}

	// Negative weights break monotonicity: Done must stay false.
	acc2 := f.NewGroup()
	feed(acc2,
		storage.Tuple{storage.Int(1), storage.Int(25)},
		storage.Tuple{storage.Int(2), storage.Int(-10)})
	if acc2.Passes() {
		t.Error("15 < 20 after negative weight")
	}
	acc3 := f.NewGroup()
	feed(acc3, storage.Tuple{storage.Int(1), storage.Int(-1)})
	feed(acc3, storage.Tuple{storage.Int(2), storage.Int(100)})
	if acc3.Done() {
		t.Error("Done must not fire once a negative weight was seen")
	}
	if !acc3.Passes() {
		t.Error("99 >= 20 should still pass")
	}
}

func TestMinMaxAccumulators(t *testing.T) {
	fmin := mkFilter(t, "MIN(answer.W) <= 5", "answer(B,W) :- r(B,W)")
	acc := fmin.NewGroup()
	if acc.Passes() {
		t.Error("MIN over empty must not pass")
	}
	feed(acc, storage.Tuple{storage.Int(1), storage.Int(10)})
	if acc.Passes() {
		t.Error("min 10 > 5")
	}
	feed(acc, storage.Tuple{storage.Int(2), storage.Int(3)})
	if !acc.Passes() || !acc.Done() {
		t.Error("min 3 <= 5 should pass and short-circuit (monotone)")
	}

	fmax := mkFilter(t, "MAX(answer.W) >= 5", "answer(B,W) :- r(B,W)")
	acc2 := fmax.NewGroup()
	feed(acc2, storage.Tuple{storage.Int(1), storage.Int(3)})
	if acc2.Passes() {
		t.Error("max 3 < 5")
	}
	feed(acc2, storage.Tuple{storage.Int(2), storage.Int(7)})
	if !acc2.Passes() || !acc2.Done() {
		t.Error("max 7 >= 5 should pass")
	}

	// Anti-monotone direction: MIN >= never Done.
	fanti := mkFilter(t, "MIN(answer.W) >= 5", "answer(B,W) :- r(B,W)")
	acc3 := fanti.NewGroup()
	feed(acc3, storage.Tuple{storage.Int(1), storage.Int(10)})
	if !acc3.Passes() {
		t.Error("min 10 >= 5 passes")
	}
	if acc3.Done() {
		t.Error("anti-monotone filter must never be Done")
	}
	feed(acc3, storage.Tuple{storage.Int(2), storage.Int(1)})
	if acc3.Passes() {
		t.Error("min 1 >= 5 must fail after more tuples")
	}
}

func TestPassesEmpty(t *testing.T) {
	cases := []struct {
		src   string
		empty bool
	}{
		{"COUNT(answer(*)) >= 1", false},
		{"COUNT(answer(*)) >= 0", true},
		{"COUNT(answer(*)) <= 5", true},
		{"SUM(answer.W) >= 0", false}, // SUM over empty undefined
		{"MIN(answer.W) <= 5", false},
	}
	for _, c := range cases {
		f := mkFilter(t, c.src, "answer(B,W) :- r(B,W)")
		if f.PassesEmpty() != c.empty {
			t.Errorf("%q: PassesEmpty = %v, want %v", c.src, f.PassesEmpty(), c.empty)
		}
	}
}

// TestMonotonePropertyOnAccumulators verifies the §5 property directly:
// for monotone filters, adding tuples never turns Passes from true to
// false.
func TestMonotonePropertyOnAccumulators(t *testing.T) {
	filters := []Filter{
		mkFilter(t, "COUNT(answer(*)) >= 3", "answer(B,W) :- r(B,W)"),
		mkFilter(t, "COUNT(answer.B) >= 3", "answer(B,W) :- r(B,W)"),
		mkFilter(t, "SUM(answer.W) >= 10", "answer(B,W) :- r(B,W)"),
		mkFilter(t, "MIN(answer.W) <= 2", "answer(B,W) :- r(B,W)"),
		mkFilter(t, "MAX(answer.W) >= 9", "answer(B,W) :- r(B,W)"),
	}
	// Non-negative weights only (the §5 precondition for SUM).
	tuples := make([]storage.Tuple, 30)
	for i := range tuples {
		tuples[i] = storage.Tuple{storage.Int(int64(i % 7)), storage.Int(int64(i % 11))}
	}
	for _, f := range filters {
		if !f.Monotone() {
			t.Fatalf("%s should be monotone", f)
		}
		acc := f.NewGroup()
		passed := false
		for _, tp := range tuples {
			acc.Add(tp)
			now := acc.Passes()
			if passed && !now {
				t.Fatalf("%s: Passes went true -> false", f)
			}
			if acc.Done() && !now {
				t.Fatalf("%s: Done with Passes false", f)
			}
			passed = now
		}
	}
}
