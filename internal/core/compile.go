package core

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/physical"
	"queryflocks/internal/storage"
)

// This file compiles FILTER computations (§4.1) to physical plans: one
// pipeline per query rule projecting the extended answer (params...,
// head...), concatenated by a union operator, grouped and filtered by
// the parameter prefix, materialized under the computation's name. The
// direct strategy compiles the whole flock this way; the plan executor
// compiles one such plan per FILTER step.

// physGrouper adapts a core.Filter to the physical executor's Grouper:
// every core.GroupAcc already satisfies the streaming subset
// (Add/Passes/Done) of the physical.GroupAcc contract.
type physGrouper struct{ f Filter }

func (g physGrouper) NewGroup() physical.GroupAcc { return g.f.NewGroup() }

// compileFiltered builds the physical plan of one FILTER computation.
// register, when non-nil, is attached to the Materialize sink (step
// plans use it to publish the step relation under its name).
func compileFiltered(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter Filter, name string, opts *EvalOptions, register func(*storage.Relation) error) (*physical.Plan, error) {

	group, err := compileFilteredNode(db, params, query, filter, name, opts, nil)
	if err != nil {
		return nil, err
	}
	return physical.NewPlan(physical.NewMaterialize(name, group, nil, "", register)), nil
}

// compileFilteredNode builds the FILTER computation's pipeline up to and
// including the group operator, without the Materialize sink — the fused
// plan executor feeds this node straight into a consuming step's
// symmetric hash join. streams, when non-nil, maps predicate names to
// producer pipelines replacing stored relations (see
// physical.RuleOpts.Streams).
func compileFilteredNode(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter Filter, name string, opts *EvalOptions, streams map[string]physical.Node) (physical.Node, error) {

	if filter.PassesEmpty() {
		return nil, fmt.Errorf("core: filter %s accepts the empty result; the flock's answer would be infinite", filter)
	}
	if err := query.Validate(); err != nil {
		return nil, err
	}
	eo := opts.evalOpts()
	branches := make([]physical.Node, len(query))
	for i, r := range query {
		order, err := eval.ResolveOrder(db, r, eo)
		if err != nil {
			return nil, err
		}
		node, err := physical.CompileRule(db, r, physical.RuleOpts{
			Order:   order,
			Out:     extendedOut(params, r),
			Streams: streams,
		})
		if err != nil {
			return nil, err
		}
		branches[i] = node
	}
	in := branches[0]
	if len(branches) > 1 {
		un, err := physical.NewUnion(branches)
		if err != nil {
			return nil, err
		}
		in = un
	}
	return physical.NewGroup(name, len(params), physGrouper{filter}, filter.String(), in)
}

// CompileDirect returns the physical plan the direct strategy executes
// for f — the EXPLAIN rendering path. Views must already be materialized
// into db (see MaterializeViews); the plan is not run.
func CompileDirect(db *storage.Database, f *Flock, opts *EvalOptions) (*physical.Plan, error) {
	return compileFiltered(db, f.Params, f.Query, f.Filter, "flock", opts, nil)
}

// CompiledStep pairs one FILTER step with its compiled physical plan.
type CompiledStep struct {
	Name string
	Plan *physical.Plan
}

// CompileSteps compiles each FILTER step of the plan against a scratch
// copy of db, registering an empty stand-in relation per step so later
// steps referencing it resolve — the EXPLAIN rendering path for static
// plans (execution compiles each step against the real step results,
// whose sizes drive the join order). Views must already be materialized
// into db.
func (p *Plan) CompileSteps(db *storage.Database, opts *EvalOptions) ([]CompiledStep, error) {
	scratch := db.Clone()
	out := make([]CompiledStep, 0, len(p.Steps))
	for _, step := range p.Steps {
		pl, err := compileFiltered(scratch, step.Params, step.Query, p.Flock.Filter, step.Name, opts, nil)
		if err != nil {
			return nil, fmt.Errorf("core: compiling step %q: %w", step.Name, err)
		}
		out = append(out, CompiledStep{Name: step.Name, Plan: pl})
		cols := make([]string, len(step.Params))
		for i, prm := range step.Params {
			cols[i] = "$" + string(prm)
		}
		scratch.Add(storage.NewRelation(step.Name, cols...))
	}
	return out, nil
}
