package core

import (
	"errors"
	"strings"
	"testing"

	"queryflocks/internal/datalog"
)

// These tests pin down the typed PlanError reporting per §4.2 failure mode:
// each legality-rule violation must name the offending step, its declared
// parameters, and the violated rule number, so front-ends (flockvet, flockd)
// can surface structured diagnostics instead of opaque strings.

func asPlanError(t *testing.T, err error) *PlanError {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error")
	}
	var pe *PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T) is not a *PlanError", err, err)
	}
	return pe
}

func fig3StepS(t *testing.T, f *Flock) FilterStep {
	t.Helper()
	okS, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"s"})
	if !ok {
		t.Fatal("no okS subquery")
	}
	return FilterStep{Name: "okS", Params: []datalog.Param{"s"}, Query: datalog.Union{okS.Rule}}
}

func TestPlanErrorStructural(t *testing.T) {
	pe := asPlanError(t, (&Plan{}).Validate())
	if pe.LegalityRule != 0 || pe.Step != "" {
		t.Errorf("no-flock error = %+v, want rule 0 plan-level", pe)
	}
	f := MustParse(fig3Src)
	pe = asPlanError(t, (&Plan{Flock: f}).Validate())
	if pe.LegalityRule != 0 || !strings.Contains(pe.Error(), "no steps") {
		t.Errorf("no-steps error = %v, want rule 0 mentioning steps", pe)
	}
}

func TestPlanErrorRule1NonMonotone(t *testing.T) {
	src := `
QUERY:
answer(B,W) :- baskets(B,$1) AND importance(B,W)
FILTER:
MIN(answer.W) >= 3`
	f := MustParse(src)
	_, err := NewPlan(f, []FilterStep{{Name: "ok", Params: f.Params, Query: f.Query}})
	pe := asPlanError(t, err)
	if pe.LegalityRule != 1 {
		t.Errorf("legality rule = %d, want 1: %v", pe.LegalityRule, pe)
	}
	if !strings.Contains(pe.Error(), "monotone") || !strings.Contains(pe.Error(), "§4.2 legality rule 1") {
		t.Errorf("message %q should name monotonicity and rule 1", pe.Error())
	}
}

func TestPlanErrorRule1FilterMismatch(t *testing.T) {
	f := MustParse(fig3Src)
	spec, err := datalog.ParsePlan(`
	ok($s,$m) := FILTER(($s,$m),
	    answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s),
	    COUNT(answer.P) >= 99
	);`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = PlanFromSpec(f, spec)
	pe := asPlanError(t, err)
	if pe.LegalityRule != 1 || pe.Step != "ok" {
		t.Errorf("filter-mismatch error = %+v, want rule 1 on step ok", pe)
	}
	if !strings.Contains(pe.Error(), "legality rule 1") {
		t.Errorf("message %q should mention legality rule 1", pe.Error())
	}
}

func TestPlanErrorRule2Naming(t *testing.T) {
	f := MustParse(fig3Src)
	stepS := fig3StepS(t, f)

	collide := stepS
	collide.Name = "exhibits"
	pe := asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{collide}}).Validate())
	if pe.LegalityRule != 2 || pe.Step != "exhibits" || !strings.Contains(pe.Msg, "collides") {
		t.Errorf("base-collision error = %+v", pe)
	}
	if !strings.Contains(pe.Error(), `step "exhibits" ($s)`) {
		t.Errorf("message %q should name the step and its parameters", pe.Error())
	}

	dup := []FilterStep{stepS, stepS, FinalStep(f, "ok", stepS)}
	pe = asPlanError(t, (&Plan{Flock: f, Steps: dup}).Validate())
	if pe.LegalityRule != 2 || pe.Step != "okS" || !strings.Contains(pe.Msg, "defined twice") {
		t.Errorf("duplicate-step error = %+v", pe)
	}

	unnamed := stepS
	unnamed.Name = ""
	pe = asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{unnamed}}).Validate())
	if pe.LegalityRule != 2 || !strings.Contains(pe.Msg, "no name") {
		t.Errorf("unnamed-step error = %+v", pe)
	}
}

func TestPlanErrorRule3Derivation(t *testing.T) {
	f := MustParse(fig3Src)
	stepS := fig3StepS(t, f)

	// A step whose query is not a subgoal subset of the flock rule.
	foreign, err := datalog.ParseRule(`answer(P) :- unrelated(P,$s)`)
	if err != nil {
		t.Fatal(err)
	}
	bad := FilterStep{Name: "okS", Params: []datalog.Param{"s"}, Query: datalog.Union{foreign}}
	pe := asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{bad, FinalStep(f, "ok", bad)}}).Validate())
	if pe.LegalityRule != 3 || pe.Step != "okS" || pe.RuleIndex != 0 {
		t.Errorf("not-derived error = %+v, want rule 3 on step okS rule 0", pe)
	}
	if !strings.Contains(pe.Msg, "not derived") {
		t.Errorf("message %q should say not derived", pe.Msg)
	}

	// Deleting subgoals must preserve safety: keep only the negated atom.
	unsafe, err := datalog.ParseRule(`answer(P) :- exhibits(P,$s) AND NOT causes(D,$s)`)
	if err != nil {
		t.Fatal(err)
	}
	badSafe := FilterStep{Name: "okS", Params: []datalog.Param{"s"}, Query: datalog.Union{unsafe}}
	pe = asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{badSafe, FinalStep(f, "ok", badSafe)}}).Validate())
	if pe.LegalityRule != 3 || !strings.Contains(pe.Msg, "unsafe") {
		t.Errorf("unsafe-step error = %+v", pe)
	}

	// Declared parameters must match the ones the query uses.
	misdeclared := stepS
	misdeclared.Params = []datalog.Param{"s", "m"}
	pe = asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{misdeclared}}).Validate())
	if pe.LegalityRule != 3 || !strings.Contains(pe.Msg, "declares parameters") {
		t.Errorf("param-mismatch error = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "($s,$m)") {
		t.Errorf("message %q should render the declared parameter list", pe.Error())
	}

	// Step references may not be negated.
	neg := FinalStep(f, "ok", stepS)
	negRule := neg.Query[0].Clone()
	negRule.Body[0].(*datalog.Atom).Negated = true
	neg.Query = datalog.Union{negRule}
	pe = asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{stepS, neg}}).Validate())
	if pe.LegalityRule != 3 || pe.Step != "ok" || !strings.Contains(pe.Msg, "negates") {
		t.Errorf("negated-ref error = %+v", pe)
	}
}

func TestPlanErrorRule4FinalStep(t *testing.T) {
	f := MustParse(fig3Src)
	stepS := fig3StepS(t, f)

	// Final step with the wrong parameter set.
	pe := asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{stepS}}).Validate())
	if pe.LegalityRule != 4 || pe.Step != "okS" {
		t.Errorf("final-params error = %+v, want rule 4 on step okS", pe)
	}
	if !strings.Contains(pe.Error(), "§4.2 legality rule 4") {
		t.Errorf("message %q should mention legality rule 4", pe.Error())
	}

	// Final step that deletes an original subgoal.
	trimmed := f.Query[0].DeleteSubgoals(len(f.Query[0].Body) - 1)
	final := FilterStep{Name: "ok", Params: f.Params, Query: datalog.Union{trimmed}}
	pe = asPlanError(t, (&Plan{Flock: f, Steps: []FilterStep{final}}).Validate())
	if pe.LegalityRule != 4 || !strings.Contains(pe.Msg, "deletes subgoals") {
		t.Errorf("deleted-subgoal error = %+v", pe)
	}
	if pe.RuleIndex != 0 {
		t.Errorf("rule index = %d, want 0", pe.RuleIndex)
	}
}
