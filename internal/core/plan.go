package core

import (
	"fmt"
	"strings"

	"queryflocks/internal/datalog"
)

// This file implements query plans as sequences of FILTER steps (§4.1) and
// the legality rule of §4.2 that characterizes when such a plan is
// equivalent to its query flock.

// FilterStep is one step of a query plan:
//
//	R(P) := FILTER(P, Q, C)
//
// creating relation Name over the parameter set Params, holding the
// parameter assignments for which query Q's result satisfies the flock's
// filter condition. (By legality rule 1 every step uses the flock's own
// filter, so the condition is not stored per step.)
type FilterStep struct {
	// Name is the relation the step defines, e.g. "okS".
	Name string
	// Params is the step's parameter list, in declared order.
	Params []datalog.Param
	// Query is the step's query: per-rule subqueries of the flock's query,
	// possibly extended with subgoals referencing earlier steps.
	Query datalog.Union
}

// String renders the step in the paper's notation (Fig. 5). The filter
// condition is supplied by the owning plan.
func (s FilterStep) render(filter Filter) string {
	var b strings.Builder
	params := make([]string, len(s.Params))
	for i, p := range s.Params {
		params[i] = p.String()
	}
	plist := strings.Join(params, ",")
	if len(s.Params) > 1 {
		plist = "(" + plist + ")"
	}
	fmt.Fprintf(&b, "%s(%s) := FILTER(%s,\n", s.Name, strings.Join(params, ","), plist)
	for _, r := range s.Query {
		fmt.Fprintf(&b, "    %s,\n", r)
	}
	fmt.Fprintf(&b, "    %s\n);", filter)
	return b.String()
}

// Plan is a legal sequence of FILTER steps computing a flock's answer;
// the final step's relation is the answer (§4.2).
type Plan struct {
	Flock *Flock
	Steps []FilterStep
}

// PlanError is a §4.2 legality failure. It names which of the four rules
// of the "Rule for Generating Query Plans" was violated, the offending
// step (by name and declared parameters), and — when the failure concerns
// one union member — the rule index, so front-ends can turn the failure
// into a positioned diagnostic instead of an opaque string.
type PlanError struct {
	// LegalityRule is the violated §4.2 condition, 1–4; 0 for structural
	// problems outside the recipe (a plan with no flock or no steps).
	LegalityRule int
	// Step is the offending step's name ("" for plan-level failures).
	Step string
	// StepParams is the offending step's declared parameter list.
	StepParams []datalog.Param
	// RuleIndex is the offending union member (0-based), or -1.
	RuleIndex int
	// Msg describes the specific failure.
	Msg string
}

// Error renders "core: step "okS" ($s) rule 0: msg (§4.2 legality rule 3)".
func (e *PlanError) Error() string {
	var b strings.Builder
	b.WriteString("core: ")
	if e.Step != "" {
		fmt.Fprintf(&b, "step %q", e.Step)
		if len(e.StepParams) > 0 {
			b.WriteString(" (" + paramList(e.StepParams) + ")")
		}
		if e.RuleIndex >= 0 {
			fmt.Fprintf(&b, " rule %d", e.RuleIndex)
		}
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	if e.LegalityRule > 0 {
		fmt.Fprintf(&b, " (§4.2 legality rule %d)", e.LegalityRule)
	}
	return b.String()
}

// planErr builds a PlanError for one step.
func planErr(legalityRule int, step string, params []datalog.Param, ruleIndex int, format string, args ...any) *PlanError {
	return &PlanError{
		LegalityRule: legalityRule,
		Step:         step,
		StepParams:   params,
		RuleIndex:    ruleIndex,
		Msg:          fmt.Sprintf(format, args...),
	}
}

// paramList renders "$s,$m".
func paramList(params []datalog.Param) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = p.String()
	}
	return strings.Join(parts, ",")
}

// NewPlan builds and validates a plan for the flock.
func NewPlan(f *Flock, steps []FilterStep) (*Plan, error) {
	p := &Plan{Flock: f, Steps: steps}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// TrivialPlan returns the single-step plan that evaluates the flock
// directly — the baseline every optimized plan is compared against.
func TrivialPlan(f *Flock) *Plan {
	return &Plan{Flock: f, Steps: []FilterStep{{Name: "ok", Params: f.Params, Query: f.Query}}}
}

// String renders the whole plan in the paper's notation.
func (p *Plan) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.render(p.Flock.Filter)
	}
	return strings.Join(parts, "\n")
}

// Validate checks the §4.2 legality rule ("Rule for Generating Query Plans
// for Conjunctive Query Flocks with Support-Type Filter Conditions"):
//
//  1. every step uses the flock's filter condition (structural here: steps
//     carry no filter of their own, and the filter must be monotone
//     support-type for the subquery bound to be sound);
//  2. every step defines a uniquely named relation (also distinct from the
//     flock's base relations);
//  3. every step derives from the flock's query by adding subgoals that
//     literally copy the left sides of previous steps and then deleting
//     subgoals while preserving safety — checked per union member,
//     positionally (rule i of a step derives from rule i of the flock);
//  4. the final step deletes no original subgoal and its parameters are
//     exactly the flock's.
func (p *Plan) Validate() error {
	if p.Flock == nil {
		return planErr(0, "", nil, -1, "plan has no flock")
	}
	if len(p.Steps) == 0 {
		return planErr(0, "", nil, -1, "plan has no steps")
	}
	if !p.Flock.Filter.Monotone() {
		return planErr(1, "", nil, -1,
			"plan requires a monotone support-type filter; %s is not", p.Flock.Filter)
	}
	base := make(map[string]bool)
	for _, b := range p.Flock.BaseRelations() {
		base[b] = true
	}
	prior := make(map[string][]datalog.Param) // step name -> params
	for si, step := range p.Steps {
		if step.Name == "" {
			return planErr(2, "", step.Params, -1,
				"step %d (parameters %s) has no name", si, paramList(step.Params))
		}
		if base[step.Name] {
			return planErr(2, step.Name, step.Params, -1, "collides with a base relation")
		}
		if _, dup := prior[step.Name]; dup {
			return planErr(2, step.Name, step.Params, -1, "defined twice")
		}
		if err := p.validateStep(step, prior); err != nil {
			return err
		}
		prior[step.Name] = step.Params
	}
	// Rule 4: the final step retains every original subgoal and restricts
	// exactly the flock's parameters.
	last := p.Steps[len(p.Steps)-1]
	if paramKey(last.Params) != paramKey(p.Flock.Params) {
		return planErr(4, last.Name, last.Params, -1,
			"final step has parameters %v, want the flock's %v", last.Params, p.Flock.Params)
	}
	for ri, r := range last.Query {
		orig := p.Flock.Query[ri]
		rest := stripStepRefs(r, prior)
		if len(rest.Body) != len(orig.Body) {
			return planErr(4, last.Name, last.Params, ri,
				"final step deletes subgoals (%d kept of %d)", len(rest.Body), len(orig.Body))
		}
	}
	return nil
}

// validateStep checks rules 2–3 for one step.
func (p *Plan) validateStep(step FilterStep, prior map[string][]datalog.Param) error {
	if len(step.Query) != len(p.Flock.Query) {
		return planErr(3, step.Name, step.Params, -1,
			"has %d rules, flock has %d", len(step.Query), len(p.Flock.Query))
	}
	// The step's parameter set must match the parameters its query uses.
	if got, want := paramKey(step.Query.Params()), paramKey(step.Params); got != want {
		return planErr(3, step.Name, step.Params, -1,
			"declares parameters %v but its query uses %s", step.Params, got)
	}
	for ri, r := range step.Query {
		orig := p.Flock.Query[ri]
		if r.Head.Pred != orig.Head.Pred || len(r.Head.Args) != len(orig.Head.Args) {
			return planErr(3, step.Name, step.Params, ri, "changes the head: %s", r.Head)
		}
		// Added subgoals must copy prior steps' left sides — either
		// literally (§4.2 rule 3b) or under a parameter renaming that
		// exploits symmetry (§3.1's "exploitation of their equivalence",
		// e.g. the single item filter applied to both $1 and $2 of the
		// market-basket flock). A renamed reference is legal only when the
		// referenced step's defining subquery, renamed the same way, is
		// still a subquery of this flock rule.
		for _, sg := range r.Body {
			a, ok := sg.(*datalog.Atom)
			if !ok {
				continue
			}
			params, isStep := prior[a.Pred]
			if !isStep {
				continue
			}
			if a.Negated {
				return planErr(3, step.Name, step.Params, ri, "negates step relation %s", a.Pred)
			}
			if len(a.Args) != len(params) {
				return planErr(3, step.Name, step.Params, ri,
					"%s has %d args, step %q has %d parameters", a, len(a.Args), a.Pred, len(params))
			}
			if err := p.validateStepRef(a, prior); err != nil {
				return planErr(3, step.Name, step.Params, ri, "%v", err)
			}
		}
		// After removing step references, what remains must be a subset of
		// the original rule's subgoals.
		rest := stripStepRefs(r, prior)
		if !datalog.IsSubgoalSubset(rest, orig) {
			return planErr(3, step.Name, step.Params, ri,
				"is not derived from the flock rule by deleting subgoals:\n  step: %s\n  flock: %s", r, orig)
		}
		// Deletions must preserve safety (§4.2 rule 3c). Step references
		// count as positive subgoals, so check the rule as written.
		if vs := datalog.CheckSafety(r); len(vs) > 0 {
			return planErr(3, step.Name, step.Params, ri, "is unsafe: %v", vs[0])
		}
	}
	return nil
}

// stripStepRefs returns r without atoms referencing plan-step relations.
func stripStepRefs(r *datalog.Rule, steps map[string][]datalog.Param) *datalog.Rule {
	stripped, _ := partitionStepRefs(r, steps)
	return stripped
}

// partitionStepRefs splits r into its base-subgoal part and its step-
// reference atoms.
func partitionStepRefs(r *datalog.Rule, steps map[string][]datalog.Param) (*datalog.Rule, []*datalog.Atom) {
	var drop []int
	var refs []*datalog.Atom
	for i, sg := range r.Body {
		if a, ok := sg.(*datalog.Atom); ok {
			if _, isStep := steps[a.Pred]; isStep {
				drop = append(drop, i)
				refs = append(refs, a)
			}
		}
	}
	return r.DeleteSubgoals(drop...), refs
}

// validateStepRef checks one reference atom a (whose predicate is a prior
// step) appearing in some rule of a later step. A literal reference
// (arguments equal to the step's parameters) is always legal. A renamed
// reference — the §3.1 symmetry exploitation, e.g. referencing the single
// item-filter step as both ok($1) and ok($2) — is legal when renaming the
// referenced step's query the same way still yields a bound on the flock:
// each renamed rule must remain a subgoal subset of the corresponding
// flock rule, recursively through that step's own references. The
// renaming must be injective so the renamed query's survivor set equals
// the step's stored relation.
func (p *Plan) validateStepRef(a *datalog.Atom, prior map[string][]datalog.Param) error {
	params := prior[a.Pred]
	sigma := make(map[datalog.Param]datalog.Param, len(params))
	literal := true
	for i, t := range a.Args {
		pv, isParam := t.(datalog.Param)
		if !isParam {
			return fmt.Errorf("%s: argument %d must be a parameter", a, i)
		}
		sigma[params[i]] = pv
		if pv != params[i] {
			literal = false
		}
	}
	if literal {
		return nil
	}
	if len(sigmaRange(sigma)) != len(sigma) {
		return fmt.Errorf("%s: renaming of %s(%v) must be injective", a, a.Pred, params)
	}
	return p.checkRenamedBound(a.Pred, sigma, prior, make(map[string]bool))
}

func sigmaRange(sigma map[datalog.Param]datalog.Param) map[datalog.Param]bool {
	out := make(map[datalog.Param]bool, len(sigma))
	for _, q := range sigma {
		out[q] = true
	}
	return out
}

// checkRenamedBound verifies that the named step's query, renamed by
// sigma, bounds the flock (rule-by-rule, positionally).
func (p *Plan) checkRenamedBound(name string, sigma map[datalog.Param]datalog.Param, prior map[string][]datalog.Param, visiting map[string]bool) error {
	if visiting[name] {
		return fmt.Errorf("cyclic reference through step %q", name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	var step *FilterStep
	for i := range p.Steps {
		if p.Steps[i].Name == name {
			step = &p.Steps[i]
			break
		}
	}
	if step == nil {
		return fmt.Errorf("unknown step %q", name)
	}
	for ri, r := range step.Query {
		renamed := r.RenameParams(sigma)
		stripped, refs := partitionStepRefs(renamed, prior)
		if !datalog.IsSubgoalSubset(stripped, p.Flock.Query[ri]) {
			return fmt.Errorf("renamed reference to %q is not a subquery of flock rule %d: %s",
				name, ri, stripped)
		}
		for _, b := range refs {
			innerParams, ok := prior[b.Pred]
			if !ok {
				return fmt.Errorf("unknown inner step %q", b.Pred)
			}
			inner := make(map[datalog.Param]datalog.Param, len(innerParams))
			for i, t := range b.Args {
				pv, isParam := t.(datalog.Param)
				if !isParam {
					return fmt.Errorf("%s: inner argument %d must be a parameter", b, i)
				}
				inner[innerParams[i]] = pv
			}
			if len(sigmaRange(inner)) != len(inner) {
				return fmt.Errorf("%s: renaming must be injective", b)
			}
			if err := p.checkRenamedBound(b.Pred, inner, prior, visiting); err != nil {
				return err
			}
		}
	}
	return nil
}

// PlanFromSpec converts a parsed plan (Fig. 5 notation) into a validated
// Plan for the flock. Per legality rule 1, every step's written filter
// must equal the flock's.
func PlanFromSpec(f *Flock, spec *datalog.PlanSpec) (*Plan, error) {
	steps := make([]FilterStep, len(spec.Steps))
	for i, s := range spec.Steps {
		if s.Filter != f.Filter.Spec() {
			return nil, planErr(1, s.Name, s.Params, -1,
				"filter %s differs from the flock's %s (legality rule 1)", s.Filter, f.Filter)
		}
		steps[i] = FilterStep{Name: s.Name, Params: s.Params, Query: s.Query}
	}
	return NewPlan(f, steps)
}

// WithStepRefs returns a copy of the union with atoms referencing the
// given steps appended to every rule — the "add in zero or more subgoals
// that are copies of the left side ... of some previous filter step"
// operation (§4.2 rule 3b).
func WithStepRefs(u datalog.Union, steps ...FilterStep) datalog.Union {
	out := make(datalog.Union, len(u))
	for i, r := range u {
		c := r.Clone()
		refs := make([]datalog.Subgoal, 0, len(steps))
		for _, s := range steps {
			args := make([]datalog.Term, len(s.Params))
			for j, p := range s.Params {
				args[j] = p
			}
			refs = append(refs, datalog.NewAtom(s.Name, args...))
		}
		c.Body = append(refs, c.Body...)
		out[i] = c
	}
	return out
}

// FinalStep builds the plan's last step: the flock's full query extended
// with references to the given prior steps.
func FinalStep(f *Flock, name string, refs ...FilterStep) FilterStep {
	return FilterStep{Name: name, Params: f.Params, Query: WithStepRefs(f.Query, refs...)}
}

// StepRef is a reference to a prior step under an explicit argument list,
// enabling the §3.1 symmetry exploitation: the same step relation can
// filter several parameters (e.g. the single item filter applied as both
// ok($1) and ok($2) in the market-basket plan).
type StepRef struct {
	// Step is the referenced prior step.
	Step FilterStep
	// Args are the parameters to reference it with; nil means the step's
	// own parameters (a literal reference).
	Args []datalog.Param
}

// Atom renders the reference as a subgoal.
func (r StepRef) Atom() *datalog.Atom {
	args := r.Args
	if args == nil {
		args = r.Step.Params
	}
	terms := make([]datalog.Term, len(args))
	for i, p := range args {
		terms[i] = p
	}
	return datalog.NewAtom(r.Step.Name, terms...)
}

// WithRefAtoms returns a copy of the union with the given step references
// prepended to every rule. Like WithStepRefs but allowing renamed
// references.
func WithRefAtoms(u datalog.Union, refs ...StepRef) datalog.Union {
	out := make(datalog.Union, len(u))
	for i, r := range u {
		c := r.Clone()
		atoms := make([]datalog.Subgoal, len(refs))
		for j, ref := range refs {
			atoms[j] = ref.Atom()
		}
		c.Body = append(atoms, c.Body...)
		out[i] = c
	}
	return out
}

// FinalStepRefs is FinalStep with explicit (possibly renamed) references.
func FinalStepRefs(f *Flock, name string, refs ...StepRef) FilterStep {
	return FilterStep{Name: name, Params: f.Params, Query: WithRefAtoms(f.Query, refs...)}
}
