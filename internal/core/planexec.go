package core

import (
	"fmt"
	"strings"
	"time"

	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// StepStats records the outcome of one executed FILTER step.
type StepStats struct {
	// Name is the step's relation name.
	Name string
	// Rows is the number of parameter tuples the step admitted.
	Rows int
}

// PlanResult is the outcome of executing a plan.
type PlanResult struct {
	// Answer is the flock's answer: the final step's relation.
	Answer *storage.Relation
	// Steps records each step's output size, in execution order.
	Steps []StepStats
}

// String summarizes the execution.
func (r *PlanResult) String() string {
	var b strings.Builder
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "%s: %d rows\n", s.Name, s.Rows)
	}
	fmt.Fprintf(&b, "answer: %d rows", r.Answer.Len())
	return b.String()
}

// Execute runs the plan's FILTER steps in order against db. Each step's
// result is registered (under the step's name) in a scratch copy of the
// database so later steps can reference it; the final step's result is the
// flock's answer. The plan must be valid (NewPlan validates; hand-built
// plans should call Validate first). opts.Workers flows into every step:
// each step's joins, anti-joins, and group-by run on the configured
// partitioned operators, with identical results for any worker count.
func (p *Plan) Execute(db *storage.Database, opts *EvalOptions) (*PlanResult, error) {
	if err := p.Flock.CheckDatabase(db); err != nil {
		return nil, err
	}
	opts = opts.withGate() // all steps share one wall clock and budget
	mat, err := p.Flock.MaterializeViews(db, opts)
	if err != nil {
		return nil, err
	}
	scratch := mat.Clone()
	res := &PlanResult{}
	// With a memo mounted, each step's keys are scoped by a salt chained
	// over the steps before it: step queries reference earlier step
	// relations by name, and the chain binds each name to its derivation
	// so equal step texts from different plans cannot alias (memo.go).
	memoSalt := ""
	if opts != nil && opts.Memo != nil {
		memoSalt = opts.MemoSalt
	}
	for si, step := range p.Steps {
		// Only the final step's relation is the flock's answer; earlier
		// steps are intermediates and escape the answer-row cap.
		stepOpts := opts
		if si < len(p.Steps)-1 {
			stepOpts = opts.subquery()
		}
		if opts != nil && opts.Memo != nil {
			c := *stepOpts
			c.MemoSalt = memoSalt
			stepOpts = &c
			memoSalt = chainSalt(memoSalt, step, p.Flock.Filter)
		}
		var start time.Time
		if opts != nil && opts.Trace != nil {
			start = time.Now()
		}
		rel, err := executeStep(scratch, p, step, stepOpts)
		if err != nil {
			return nil, fmt.Errorf("core: executing step %q: %w", step.Name, err)
		}
		res.Steps = append(res.Steps, StepStats{Name: step.Name, Rows: rel.Len()})
		res.Answer = rel
		if opts != nil && opts.Trace != nil {
			opts.Trace.Collector().Record(obs.Event{
				Op:      obs.OpStep,
				Desc:    step.Name,
				RowsOut: rel.Len(),
				Wall:    time.Since(start),
			})
		}
	}
	// A plan may declare the final step's parameters in any order (e.g.
	// Fig. 5 writes ok($s,$m)); normalize the answer to the flock's
	// canonical (sorted) parameter order.
	res.Answer = reorderToFlockParams(res.Answer, p.Flock)
	return res, nil
}

// executeStep runs one FILTER step against the scratch database. In
// streaming mode the step compiles to a physical plan whose Materialize
// sink registers the step relation in scratch (later steps reference
// it); the materializing mode evaluates and registers explicitly. The
// step is compiled at execution time so the join order sees the actual
// sizes of earlier step relations.
func executeStep(scratch *storage.Database, p *Plan, step FilterStep, opts *EvalOptions) (*storage.Relation, error) {
	if opts != nil && opts.Memo != nil {
		// The memo route materializes (a hit returns a stored relation);
		// register the result like the materializing branch does.
		rel, err := evalFiltered(scratch, step.Params, step.Query, p.Flock.Filter, step.Name, opts)
		if err != nil {
			return nil, err
		}
		scratch.Add(rel)
		return rel, nil
	}
	if opts.execMode().Streaming() {
		// The streaming branch compiles directly, bypassing evalFiltered —
		// consult the cluster hook here so a coordinator sees every FILTER
		// step of an executed plan exactly once.
		if opts != nil && opts.FilterEval != nil {
			rel, handled, err := opts.FilterEval(scratch, step.Params, step.Query, p.Flock.Filter, step.Name, opts)
			if err != nil {
				return nil, err
			}
			if handled {
				scratch.Add(rel)
				return rel, nil
			}
		}
		register := func(rel *storage.Relation) error {
			scratch.Add(rel)
			return nil
		}
		plan, err := compileFiltered(scratch, step.Params, step.Query, p.Flock.Filter, step.Name, opts, register)
		if err != nil {
			return nil, err
		}
		return eval.RunPlan(scratch, plan, opts.evalOpts())
	}
	rel, err := evalFiltered(scratch, step.Params, step.Query, p.Flock.Filter, step.Name, opts)
	if err != nil {
		return nil, err
	}
	scratch.Add(rel)
	return rel, nil
}

// reorderToFlockParams projects the final step's relation onto the flock's
// canonical parameter column order.
func reorderToFlockParams(rel *storage.Relation, f *Flock) *storage.Relation {
	want := f.ParamColumns()
	pos := make([]int, len(want))
	same := true
	for i, col := range want {
		p := rel.ColumnIndex(col)
		pos[i] = p
		if p != i {
			same = false
		}
	}
	if same {
		return rel
	}
	out := storage.NewRelation(rel.Name(), want...)
	for _, t := range rel.Tuples() {
		out.Insert(t.Project(pos))
	}
	return out
}
