package core

import (
	"math/rand"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// mapMemo is a minimal in-test SubqueryMemo: an unbounded map per plane
// with traffic counters, so tests can assert which plane served a run
// without depending on the serving-layer LRU.
type mapMemo struct {
	ext, surv                            map[string]*storage.Relation
	extHits, extMiss, survHits, survMiss int
}

func newMapMemo() *mapMemo {
	return &mapMemo{ext: map[string]*storage.Relation{}, surv: map[string]*storage.Relation{}}
}

func (m *mapMemo) Extended(key string) (*storage.Relation, bool) {
	rel, ok := m.ext[key]
	if ok {
		m.extHits++
	} else {
		m.extMiss++
	}
	return rel, ok
}
func (m *mapMemo) PutExtended(key string, rel *storage.Relation) { m.ext[key] = rel }
func (m *mapMemo) Survivors(key string) (*storage.Relation, bool) {
	rel, ok := m.surv[key]
	if ok {
		m.survHits++
	} else {
		m.survMiss++
	}
	return rel, ok
}
func (m *mapMemo) PutSurvivors(key string, rel *storage.Relation) { m.surv[key] = rel }

// TestMemoMatchesDirectRandomized is the memo-route oracle: on random
// instances, direct evaluation and plan execution must return the same
// answer with the memo cold, with the memo hot, and without a memo —
// and the hot direct run must be served from the survivor plane.
func TestMemoMatchesDirectRandomized(t *testing.T) {
	const trials = 150
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		db := randomFlockDB(rng)
		f := randomFlock(rng)
		want, err := f.Eval(db, nil)
		if err != nil {
			t.Fatalf("trial %d plain: %v", trial, err)
		}

		memo := newMapMemo()
		opts := &EvalOptions{Memo: memo, MemoSalt: MemoContext(db, f)}
		cold, err := f.Eval(db, opts)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		if !cold.Equal(want) {
			t.Fatalf("trial %d: cold memo != plain\nflock:\n%s\ncold:\n%s\nwant:\n%s",
				trial, f, cold.Dump(), want.Dump())
		}
		before := memo.survHits
		hot, err := f.Eval(db, opts)
		if err != nil {
			t.Fatalf("trial %d hot: %v", trial, err)
		}
		if !hot.Equal(want) {
			t.Fatalf("trial %d: hot memo != plain\nflock:\n%s", trial, f)
		}
		if memo.survHits <= before {
			t.Fatalf("trial %d: hot run did not hit the survivor plane", trial)
		}

		plan, err := randomLegalPlan(f, rng)
		if err != nil {
			t.Fatalf("trial %d plan build: %v", trial, err)
		}
		pmemo := newMapMemo()
		popts := &EvalOptions{Memo: pmemo, MemoSalt: MemoContext(db, f)}
		for pass := 0; pass < 2; pass++ {
			res, err := plan.Execute(db, popts)
			if err != nil {
				t.Fatalf("trial %d plan pass %d: %v\nplan:\n%s", trial, pass, err, plan)
			}
			if !res.Answer.Equal(want) {
				t.Fatalf("trial %d plan pass %d: plan+memo != plain\nflock:\n%s\nplan:\n%s\ngot:\n%s\nwant:\n%s",
					trial, pass, f, plan, res.Answer.Dump(), want.Dump())
			}
		}
		if pmemo.survHits == 0 {
			t.Fatalf("trial %d: second plan pass did not hit the memo", trial)
		}
	}
}

func countFlock(t *testing.T, threshold int64) *Flock {
	t.Helper()
	u := datalog.Union{datalog.NewRule(
		datalog.NewAtom("answer", datalog.Var("X")),
		datalog.NewAtom("r", datalog.Var("X"), datalog.Param("p")),
	)}
	f, err := New(u, datalog.FilterSpec{
		Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(threshold),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func memoDB() *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B")
	for _, row := range [][2]int64{{1, 1}, {2, 1}, {3, 1}, {1, 2}, {2, 2}} {
		r.InsertValues(storage.Int(row[0]), storage.Int(row[1]))
	}
	db.Add(r)
	return db
}

// TestMemoThresholdTighteningReusesExtended checks the §3.1 factoring
// the memo is built on: the extended answer is filter-independent, so a
// threshold-tightened flock reuses it (extended hit) while recomputing
// only the group-and-filter pass (survivor miss).
func TestMemoThresholdTighteningReusesExtended(t *testing.T) {
	db := memoDB()
	memo := newMapMemo()
	loose, tight := countFlock(t, 2), countFlock(t, 3)

	got, err := loose.Eval(db, &EvalOptions{Memo: memo, MemoSalt: MemoContext(db, loose)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 { // p=1 has 3 baskets, p=2 has 2
		t.Fatalf("loose answer:\n%s", got.Dump())
	}

	got, err = tight.Eval(db, &EvalOptions{Memo: memo, MemoSalt: MemoContext(db, tight)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("tight answer:\n%s", got.Dump())
	}
	if memo.extHits == 0 {
		t.Fatal("tightened threshold should reuse the memoized extended answer")
	}
	if memo.survHits != 0 {
		t.Fatal("tightened threshold must not reuse the other threshold's survivors")
	}

	want, err := tight.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("memoized tight answer differs from plain:\n%s\nvs\n%s", got.Dump(), want.Dump())
	}
}

// TestMemoSaltSeparatesVersions checks invalidation-by-key-construction:
// after a data change and a version bump, MemoContext yields a fresh
// salt, so nothing from the old version is reused.
func TestMemoSaltSeparatesVersions(t *testing.T) {
	db := memoDB()
	memo := newMapMemo()
	f := countFlock(t, 3)

	old, err := f.Eval(db, &EvalOptions{Memo: memo, MemoSalt: MemoContext(db, f)})
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 1 {
		t.Fatalf("pre-mutation answer:\n%s", old.Dump())
	}

	next := db.Clone()
	base, err := db.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	grown := base.Clone()
	grown.InsertValues(storage.Int(4), storage.Int(2))
	next.Add(grown)
	next.BumpVersion()
	if MemoContext(next, f) == MemoContext(db, f) {
		t.Fatal("version bump must change the memo salt")
	}

	got, err := f.Eval(next, &EvalOptions{Memo: memo, MemoSalt: MemoContext(next, f)})
	if err != nil {
		t.Fatal(err)
	}
	if memo.extHits != 0 || memo.survHits != 0 {
		t.Fatalf("post-mutation run reused stale entries: %+v", memo)
	}
	if got.Len() != 2 { // p=2 now has 3 baskets too
		t.Fatalf("post-mutation answer:\n%s", got.Dump())
	}
	// The old snapshot still answers from its own keys.
	if again, err := f.Eval(db, &EvalOptions{Memo: memo, MemoSalt: MemoContext(db, f)}); err != nil || !again.Equal(old) {
		t.Fatalf("old-version re-run: %v\n%s", err, again.Dump())
	}
	if memo.survHits == 0 {
		t.Fatal("old-version re-run should have hit its survivors")
	}
}

// TestMemoKeysAlphaInvariant: alpha-renamed unions derive the same
// extended key, and distinct data or parameter shapes do not collide.
func TestMemoKeysAlphaInvariant(t *testing.T) {
	mk := func(v string) datalog.Union {
		return datalog.Union{datalog.NewRule(
			datalog.NewAtom("answer", datalog.Var(v)),
			datalog.NewAtom("r", datalog.Var(v), datalog.Param("p")),
		)}
	}
	params := []datalog.Param{"p"}
	a := extendedKey("salt", params, mk("X"))
	b := extendedKey("salt", params, mk("Zed"))
	if a != b {
		t.Fatalf("alpha-renamed unions must share a key: %q vs %q", a, b)
	}
	if extendedKey("other", params, mk("X")) == a {
		t.Fatal("different salts must not collide")
	}
	f := countFlock(t, 2)
	if survivorKey(a, f.Filter) == survivorKey(a, countFlock(t, 3).Filter) {
		t.Fatal("different thresholds must use different survivor keys")
	}
	if survivorKey(a, f.Filter) != survivorKey(a, countFlock(t, 2).Filter) {
		t.Fatal("equal filters must share a survivor key")
	}
}
