package core

import (
	"fmt"
	"time"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// This file implements intermediate predicates — the extension §2.2 calls
// feasible but leaves aside: "to include patients with several diseases
// simultaneously, we would have to extend our query-flocks language to
// allow intermediate predicates (in particular, a predicate relating
// patients to the set of symptoms from all their diseases)". A view is a
// non-recursive, parameter-free rule defining a derived relation; views
// are materialized before the flock's query runs, and every evaluation
// strategy (direct, naive, plans, dynamic) sees them as ordinary
// relations.

// validateViews checks the flock's views: each must be safe, mention no
// parameters, and reference only base relations or views declared earlier
// (no recursion). Multiple rules may share a head predicate (a union
// view) when declared contiguously.
func validateViews(views []*datalog.Rule) error {
	defined := make(map[string]bool)
	for i, v := range views {
		if vs := datalog.CheckSafety(v); len(vs) > 0 {
			return fmt.Errorf("core: view %s is unsafe: %v", v.Head, vs[0])
		}
		if ps := v.Params(); len(ps) > 0 {
			return fmt.Errorf("core: view %s mentions parameter %s; views must be parameter-free", v.Head, ps[0])
		}
		for _, t := range v.Head.Args {
			if _, isVar := t.(datalog.Var); !isVar {
				return fmt.Errorf("core: view %s head arguments must be variables", v.Head)
			}
		}
		// A rule may reference heads defined strictly before this rule's
		// own predicate started (self-reference and forward references are
		// recursion).
		for _, pred := range v.Predicates() {
			if pred == v.Head.Pred {
				return fmt.Errorf("core: view %s is recursive", v.Head)
			}
			for _, later := range views[i:] {
				if later.Head.Pred == pred && !defined[pred] {
					return fmt.Errorf("core: view %s references %q before it is defined", v.Head, pred)
				}
			}
		}
		defined[v.Head.Pred] = true
	}
	return nil
}

// viewPredicates returns the set of predicates defined by the flock's
// views.
func (f *Flock) viewPredicates() map[string]bool {
	out := make(map[string]bool, len(f.Views))
	for _, v := range f.Views {
		out[v.Head.Pred] = true
	}
	return out
}

// MaterializeViews evaluates the flock's views against db (in declaration
// order) and returns a database extended with one relation per view
// predicate. The input database must not already contain relations with
// those names. With no views, db itself is returned.
func (f *Flock) MaterializeViews(db *storage.Database, opts *EvalOptions) (*storage.Database, error) {
	if len(f.Views) == 0 {
		return db, nil
	}
	// Views share the evaluation's clock and tuple budget but are never
	// the user-facing answer, so the row cap does not apply to them.
	opts = opts.withGate().subquery()
	out := db.Clone()
	rels := make(map[string]*storage.Relation)
	for _, v := range f.Views {
		var start time.Time
		if opts != nil && opts.Trace != nil {
			start = time.Now()
		}
		if db.Has(v.Head.Pred) {
			return nil, fmt.Errorf("core: view %q collides with an existing relation", v.Head.Pred)
		}
		part, err := eval.EvalRule(out, v, v.Head.Args, opts.evalOpts())
		if err != nil {
			return nil, fmt.Errorf("core: materializing view %s: %w", v.Head, err)
		}
		rel, exists := rels[v.Head.Pred]
		if !exists {
			cols := make([]string, len(v.Head.Args))
			for i := range v.Head.Args {
				cols[i] = fmt.Sprintf("c%d", i+1)
			}
			rel = storage.NewRelation(v.Head.Pred, cols...)
			rels[v.Head.Pred] = rel
			out.Add(rel)
		}
		if rel.Arity() != part.Arity() {
			return nil, fmt.Errorf("core: view %q rules disagree on arity (%d vs %d)",
				v.Head.Pred, rel.Arity(), part.Arity())
		}
		for _, t := range part.Tuples() {
			rel.Insert(t)
		}
		if opts != nil && opts.Trace != nil {
			opts.Trace.Collector().Record(obs.Event{
				Op:      obs.OpView,
				Desc:    v.Head.String(),
				RowsIn:  part.Len(),
				RowsOut: rel.Len(),
				Wall:    time.Since(start),
			})
		}
	}
	return out, nil
}
