package core

import (
	"fmt"
	"math/rand"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// Tests for GroupAcc.Merge: the parallel group-by splits each group's head
// tuples across workers, aggregates partials independently (with the
// monotone Done short-circuit live in every partial), and folds them with
// Merge. Merged accumulators must decide exactly like one accumulator fed
// the whole stream, for every aggregate kind.

// mergeFilter builds a Filter over head answer(P, V); the target column V
// sits at head position 1.
func mergeFilter(t *testing.T, agg datalog.AggKind, target string, op datalog.CmpOp, threshold storage.Value) Filter {
	t.Helper()
	head := &datalog.Atom{Pred: "answer", Args: []datalog.Term{datalog.Var("P"), datalog.Var("V")}}
	f, err := NewFilter(datalog.FilterSpec{Agg: agg, Target: target, Op: op, Threshold: threshold}, head)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// splitAndMerge feeds heads through nParts accumulators (round-robin, with
// per-partial Done short-circuiting exactly as the parallel group-by does)
// and folds them with Merge, mirroring the merge loop in groupAndFilter.
func splitAndMerge(f Filter, heads []storage.Tuple, nParts int) (passes, done bool) {
	accs := make([]GroupAcc, nParts)
	dones := make([]bool, nParts)
	for i := range accs {
		accs[i] = f.NewGroup()
	}
	for i, h := range heads {
		p := i % nParts
		if dones[p] {
			continue
		}
		accs[p].Add(h)
		if accs[p].Done() {
			dones[p] = true
		}
	}
	acc, accDone := accs[0], dones[0]
	for p := 1; p < nParts; p++ {
		if accDone {
			break
		}
		if dones[p] {
			accDone = true
			break
		}
		acc.Merge(accs[p])
		if acc.Done() {
			accDone = true
		}
	}
	return accDone || acc.Passes(), accDone
}

// sequential feeds all heads through one accumulator with the same
// short-circuit the sequential group-by applies.
func sequential(f Filter, heads []storage.Tuple) (passes, done bool) {
	acc := f.NewGroup()
	for _, h := range heads {
		if acc.Done() {
			return true, true
		}
		acc.Add(h)
	}
	return acc.Done() || acc.Passes(), acc.Done()
}

func head(p string, v int64) storage.Tuple {
	return storage.Tuple{storage.Str(p), storage.Int(v)}
}

func TestMergeMatchesSequentialPerAggregate(t *testing.T) {
	cases := []struct {
		name   string
		filter Filter
		heads  []storage.Tuple
		want   bool
	}{
		{"count pass", mergeFilter(t, datalog.AggCount, "", datalog.Ge, storage.Int(3)),
			[]storage.Tuple{head("a", 1), head("b", 2), head("c", 3), head("d", 4)}, true},
		{"count fail", mergeFilter(t, datalog.AggCount, "", datalog.Ge, storage.Int(5)),
			[]storage.Tuple{head("a", 1), head("b", 2)}, false},
		{"count distinct dedups across partials", mergeFilter(t, datalog.AggCount, "V", datalog.Ge, storage.Int(3)),
			// Five tuples but only two distinct V values: partials that each
			// see both values must not double-count after Merge.
			[]storage.Tuple{head("a", 1), head("b", 2), head("c", 1), head("d", 2), head("e", 1)}, false},
		{"count distinct pass", mergeFilter(t, datalog.AggCount, "V", datalog.Ge, storage.Int(3)),
			[]storage.Tuple{head("a", 1), head("b", 2), head("c", 3), head("d", 1)}, true},
		{"sum pass", mergeFilter(t, datalog.AggSum, "V", datalog.Ge, storage.Int(10)),
			[]storage.Tuple{head("a", 4), head("b", 4), head("c", 4)}, true},
		{"sum with negative weight", mergeFilter(t, datalog.AggSum, "V", datalog.Ge, storage.Int(10)),
			// The early +12 would short-circuit a naive monotone check; the
			// -100 in another partial must still drag the merged sum down.
			[]storage.Tuple{head("a", 12), head("b", -100), head("c", 1)}, false},
		{"min pass", mergeFilter(t, datalog.AggMin, "V", datalog.Le, storage.Int(2)),
			[]storage.Tuple{head("a", 9), head("b", 1), head("c", 7)}, true},
		{"min fail", mergeFilter(t, datalog.AggMin, "V", datalog.Le, storage.Int(0)),
			[]storage.Tuple{head("a", 9), head("b", 1)}, false},
		{"max pass", mergeFilter(t, datalog.AggMax, "V", datalog.Ge, storage.Int(8)),
			[]storage.Tuple{head("a", 2), head("b", 9), head("c", 1)}, true},
		{"max fail", mergeFilter(t, datalog.AggMax, "V", datalog.Ge, storage.Int(10)),
			[]storage.Tuple{head("a", 2), head("b", 9)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqPass, _ := sequential(tc.filter, tc.heads)
			if seqPass != tc.want {
				t.Fatalf("sequential: passes=%v, want %v", seqPass, tc.want)
			}
			for parts := 2; parts <= 4; parts++ {
				mergedPass, _ := splitAndMerge(tc.filter, tc.heads, parts)
				if mergedPass != tc.want {
					t.Errorf("%d partials: passes=%v, want %v", parts, mergedPass, tc.want)
				}
			}
		})
	}
}

// TestMergeDoneShortCircuit pins the Done interaction: once any partial
// short-circuits on a monotone condition, the merged group passes without
// consulting the other partials (more tuples cannot un-pass it), and Merge
// into a Done accumulator is never required to be meaningful.
func TestMergeDoneShortCircuit(t *testing.T) {
	f := mergeFilter(t, datalog.AggCount, "", datalog.Ge, storage.Int(2))
	heads := []storage.Tuple{head("a", 1), head("b", 2), head("c", 3), head("d", 4)}

	seqPass, seqDone := sequential(f, heads)
	if !seqPass || !seqDone {
		t.Fatalf("sequential: passes=%v done=%v, want both true", seqPass, seqDone)
	}
	for parts := 2; parts <= 4; parts++ {
		pass, done := splitAndMerge(f, heads, parts)
		if !pass || !done {
			t.Errorf("%d partials: passes=%v done=%v, want both true", parts, pass, done)
		}
	}

	// SUM must never short-circuit: a negative weight later in the stream
	// (or in another worker's partition) can drag the sum back below the
	// threshold, so a mid-stream Done verdict would depend on tuple order
	// and worker count.
	sum := mergeFilter(t, datalog.AggSum, "V", datalog.Ge, storage.Int(5))
	acc := sum.NewGroup()
	acc.Add(head("a", 10))
	if acc.Done() {
		t.Error("SUM must not report Done: a later negative weight could still fail it")
	}
	acc2 := sum.NewGroup()
	acc2.Add(head("b", -1))
	acc2.Add(head("c", 20))
	if acc2.Done() {
		t.Error("SUM with a negative weight must not report Done")
	}
	acc2.Merge(acc)
	if !acc2.Passes() {
		t.Error("merged sum 29 >= 5 should pass")
	}
}

// TestSumOrderAndWorkerInvariance is the regression for the unsound SUM
// short-circuit: a group whose early tuples pass the threshold but whose
// full sum fails must be rejected regardless of tuple order or worker
// count. Before the fix, sequential evaluation short-circuited on the
// early +12 and accepted the group, and with the negative weight ordered
// first, 2-worker evaluation disagreed with sequential.
func TestSumOrderAndWorkerInvariance(t *testing.T) {
	f := mergeFilter(t, datalog.AggSum, "V", datalog.Ge, storage.Int(10))
	orders := [][]storage.Tuple{
		{head("a", 12), head("b", -100), head("c", 1)},
		{head("b", -100), head("a", 12), head("c", 1)},
		{head("c", 1), head("a", 12), head("b", -100)},
	}
	for oi, heads := range orders {
		// Interleave filler groups (each passing on its own) so the relation
		// crosses minParallelGroupRows and group "g"'s tuples land in
		// different worker partitions.
		ext := storage.NewRelation("ext", "P", "HP", "V")
		for i, h := range heads {
			for j := 0; j < 200; j++ {
				p := storage.Int(int64(i*200 + j))
				ext.Insert(storage.Tuple{p, p, storage.Int(50)})
			}
			ext.Insert(storage.Tuple{storage.Str("g"), h[0], h[1]})
		}
		for _, w := range []int{1, 2, 3} {
			got := GroupAndFilterWorkers(ext, 1, f, "out", w)
			if got.Contains(storage.Tuple{storage.Str("g")}) {
				t.Errorf("order %d workers=%d: group with true sum -87 accepted", oi, w)
			}
			if got.Len() != 600 {
				t.Errorf("order %d workers=%d: %d filler groups pass, want 600", oi, w, got.Len())
			}
		}
	}
}

// TestGroupAndFilterWorkersMergeEquivalence drives the full parallel
// group-by on randomized extended results, for all four aggregates, and
// checks every worker count agrees with sequential — the end-to-end
// property the Merge contract exists to serve. The extended relation has
// shape (P | P V): one parameter column, then the two head columns of
// answer(P, V).
func TestGroupAndFilterWorkersMergeEquivalence(t *testing.T) {
	filters := []Filter{
		mergeFilter(t, datalog.AggCount, "", datalog.Ge, storage.Int(4)),
		mergeFilter(t, datalog.AggCount, "V", datalog.Ge, storage.Int(3)),
		mergeFilter(t, datalog.AggSum, "V", datalog.Ge, storage.Int(40)),
		mergeFilter(t, datalog.AggMin, "V", datalog.Le, storage.Int(2)),
		mergeFilter(t, datalog.AggMax, "V", datalog.Ge, storage.Int(18)),
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ext := storage.NewRelation("ext", "P", "HP", "V")
		for i := 0; i < 3_000; i++ {
			p := storage.Int(int64(rng.Intn(50)))
			v := int64(rng.Intn(20))
			if rng.Intn(40) == 0 {
				v = -v // occasional negative weights exercise the SUM taint
			}
			ext.Insert(storage.Tuple{p, p, storage.Int(v)})
		}
		for fi, f := range filters {
			want := GroupAndFilterWorkers(ext, 1, f, "out", 1)
			for _, w := range []int{2, 3, 8} {
				got := GroupAndFilterWorkers(ext, 1, f, "out", w)
				if !got.Equal(want) {
					t.Fatalf("seed %d filter %d [%s] workers=%d: %d groups pass, want %d",
						seed, fi, f, w, got.Len(), want.Len())
				}
			}
		}
	}
}

var _ = fmt.Sprintf // keep fmt available for debugging edits
