package core_test

import (
	"testing"

	"queryflocks/internal/analysis"
	"queryflocks/internal/core"
)

// FuzzParse asserts that core.Parse never panics — arbitrary input either
// yields a valid flock or an error — and that any flock it accepts
// round-trips through its paper-notation printer. The analyzer runs on
// every input too: flockvet must never panic or stall, whatever the
// source, and a program core.Parse accepts must never carry error-severity
// diagnostics (the analyzer's error set is meant to be a superset of the
// constructor's rejections, not to disagree with it). The seed corpus is
// the flock sources used across examples/ plus edge cases around each
// validation rule (safety, parameter positivity, views, filters). Normal
// test runs replay the seeds; `go test -fuzz=FuzzParse ./internal/core`
// explores.
//
// (This lives in package core_test so it can import internal/analysis,
// which itself imports core.)
func FuzzParse(f *testing.F) {
	seeds := []string{
		// examples/quickstart — the Fig. 2 market-basket flock.
		"QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\nFILTER:\nCOUNT(answer.B) >= 20",
		// examples/multidisease — negation, and the §2.2 VIEWS extension.
		"QUERY:\nanswer(P) :-\n    exhibits(P,$s) AND\n    treatments(P,$m) AND\n    diagnoses(P,D) AND\n    NOT causes(D,$s)\nFILTER:\nCOUNT(answer.P) >= 20",
		"VIEWS:\nallCaused(P,S) :- diagnoses(P,D) AND causes(D,S)\nQUERY:\nanswer(P) :-\n    exhibits(P,$s) AND\n    treatments(P,$m) AND\n    NOT allCaused(P,$s)\nFILTER:\nCOUNT(answer.P) >= 20",
		// Union query with the COUNT(answer(*)) distinct-tuple form.
		"QUERY:\nanswer(A) :- link(A,D1,D2) AND inAnchor(A,$1)\nanswer(D) :- inTitle(D,$1)\nFILTER:\nCOUNT(answer(*)) >= 20",
		// Weighted baskets: SUM over a head column, float threshold.
		"QUERY:\nanswer(B,W) :- baskets(B,$1) AND weights(B,W)\nFILTER:\nSUM(answer.W) >= 19.5",
		// MIN/MAX filters and comparisons against constants.
		"QUERY:\nanswer(X) :- r(X,$1) AND X != 3\nFILTER:\nMIN(answer.X) <= 5",
		"QUERY:\nanswer(X) :- r(X,$1)\nFILTER:\nMAX(answer.X) >= 1",
		// Inputs each validation rule rejects: no parameters, parameter in
		// the head, unsafe rule, parameter missing from a positive subgoal.
		"QUERY:\nanswer(B) :- baskets(B,I)\nFILTER:\nCOUNT(answer.B) >= 1",
		"QUERY:\nanswer($1) :- baskets($1,I)\nFILTER:\nCOUNT(answer.$1) >= 1",
		"QUERY:\nanswer(X) :- NOT r(X,$1)\nFILTER:\nCOUNT(answer.X) >= 1",
		"QUERY:\nanswer(X) :- r(X) AND $1 < 2\nFILTER:\nCOUNT(answer.X) >= 1",
		// Filter referencing a column the head lacks; unknown aggregate.
		"QUERY:\nanswer(X) :- r(X,$1)\nFILTER:\nCOUNT(answer.Y) >= 1",
		"QUERY:\nanswer(X) :- r(X,$1)\nFILTER:\nAVG(answer.X) >= 1",
		// Analyzer-specific territory: redundancy, subsumption, constant
		// comparisons, non-monotone filters, infinite-answer filters.
		"QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,X)\nFILTER:\nCOUNT(answer.B) >= 2",
		"QUERY:\nanswer(B) :- baskets(B,$1)\nanswer(B) :- baskets(B,$1) AND sales(B,B)\nFILTER:\nCOUNT(answer.B) >= 2",
		"QUERY:\nanswer(B) :- baskets(B,$1) AND 3 > 5 AND $1 = $1\nFILTER:\nCOUNT(answer.B) >= 2",
		"QUERY:\nanswer(B,W) :- baskets(B,$1) AND importance(B,W)\nFILTER:\nMIN(answer.W) >= 3",
		"QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nCOUNT(answer.B) >= 0",
		// Degenerate fragments.
		"QUERY:",
		"FILTER:\nCOUNT(answer.X) >= 1",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// The analyzer must be total: no panics, no stalls (the containment
		// budget bounds the exponential searches), on any input.
		ds := analysis.AnalyzeSource(src, analysis.Options{})

		flock, err := core.Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, d := range ds {
			// QF007 (filter satisfied by the empty result) is the one error
			// the constructor defers: core.Parse accepts the program and the
			// evaluators reject it at run time. Every other analyzer error
			// must coincide with a constructor rejection.
			if d.Severity == analysis.SevError && d.Code != "QF007" {
				t.Fatalf("core.Parse accepted a program the analyzer rejects:\nsource: %q\ndiagnostics:\n%s",
					src, analysis.Render(ds))
			}
		}
		// An accepted flock must re-parse from its own rendering.
		if _, err := core.Parse(flock.String()); err != nil {
			t.Fatalf("accepted source failed to re-parse after printing:\nsource: %q\nrendered: %q\nerr: %v",
				src, flock.String(), err)
		}
	})
}
