package core

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/physical"
	"queryflocks/internal/storage"
)

// This file is the fused plan executor: instead of materializing every
// FILTER step's relation and letting later steps re-read it, a step
// whose relation is consumed by exactly one later atom streams its
// passing parameter tuples straight into that consumer — as the
// consumer's pipeline source when the join order puts the streamed atom
// first, or through a symmetric hash join otherwise. Steps consumed
// more than once (or through a negation, or with constants/repeated
// variables at the consuming atom) still materialize normally, so
// fusion never changes the answer.

// ExecuteFused runs the plan's FILTER steps with producer-to-consumer
// fusion and returns the flock's answer (normalized to the canonical
// parameter order). The answer is Relation.Equal to Execute's for every
// worker count and execution mode.
func (p *Plan) ExecuteFused(db *storage.Database, opts *EvalOptions) (*storage.Relation, error) {
	if err := p.Flock.CheckDatabase(db); err != nil {
		return nil, err
	}
	opts = opts.withGate() // all steps share one wall clock and budget
	mat, err := p.Flock.MaterializeViews(db, opts)
	if err != nil {
		return nil, err
	}
	scratch := mat.Clone()
	fusable := p.fusableSteps()
	producers := make(map[string]physical.Node)
	var answer *storage.Relation
	for si, step := range p.Steps {
		stepOpts := opts
		if si < len(p.Steps)-1 {
			stepOpts = opts.subquery()
		}
		node, err := compileFilteredNode(scratch, step.Params, step.Query, p.Flock.Filter, step.Name, stepOpts, producers)
		if err != nil {
			return nil, fmt.Errorf("core: compiling fused step %q: %w", step.Name, err)
		}
		if si < len(p.Steps)-1 && fusable[step.Name] {
			// Defer: the consuming step pulls this pipeline directly. An
			// empty stand-in keeps later join ordering and arity checks
			// resolvable without materializing anything.
			producers[step.Name] = node
			cols := make([]string, len(step.Params))
			for i, prm := range step.Params {
				cols[i] = "$" + string(prm)
			}
			scratch.Add(storage.NewRelation(step.Name, cols...))
			continue
		}
		register := func(rel *storage.Relation) error {
			scratch.Add(rel)
			return nil
		}
		plan := physical.NewPlan(physical.NewMaterialize(step.Name, node, nil, "", register))
		rel, err := eval.RunPlan(scratch, plan, stepOpts.evalOpts())
		if err != nil {
			return nil, fmt.Errorf("core: executing fused step %q: %w", step.Name, err)
		}
		answer = rel
	}
	return reorderToFlockParams(answer, p.Flock), nil
}

// fusableSteps reports which step relations can stream into their
// consumer: exactly one consuming atom occurrence across all later
// steps, positive (negation anti-joins need a stored relation), with
// distinct variable/parameter arguments.
func (p *Plan) fusableSteps() map[string]bool {
	type usage struct {
		refs       int
		streamable bool
	}
	uses := make(map[string]*usage, len(p.Steps))
	for _, s := range p.Steps {
		uses[s.Name] = &usage{}
	}
	for _, step := range p.Steps {
		for _, r := range step.Query {
			for _, a := range r.PositiveAtoms() {
				if u, isStep := uses[a.Pred]; isStep {
					u.refs++
					u.streamable = streamableAtom(a)
				}
			}
			for _, a := range r.NegatedAtoms() {
				if u, isStep := uses[a.Pred]; isStep {
					u.refs += 2 // anti-join probes a stored set: never fuse
				}
			}
		}
	}
	out := make(map[string]bool, len(uses))
	for name, u := range uses {
		out[name] = u.refs == 1 && u.streamable
	}
	return out
}

// streamableAtom reports whether an atom can consume a stream: every
// argument a variable or parameter, none repeated.
func streamableAtom(a *datalog.Atom) bool {
	seen := make(map[string]bool, len(a.Args))
	for _, t := range a.Args {
		var col string
		switch x := t.(type) {
		case datalog.Var:
			col = string(x)
		case datalog.Param:
			col = "$" + string(x)
		default:
			return false
		}
		if seen[col] {
			return false
		}
		seen[col] = true
	}
	return true
}
