package core

import (
	"math/rand"
	"testing"
)

// TestSoakEquivalence is a heavier randomized pass over the full strategy
// matrix (skipped under -short): larger domains and more trials than the
// standard oracle tests, catching rare-shape bugs the fast suite misses.
func TestSoakEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 600; trial++ {
		db := randomFlockDB(rng)
		f := randomFlock(rng)
		naive, err := f.EvalNaive(db)
		if err != nil {
			t.Fatalf("trial %d naive: %v\n%s", trial, err, f)
		}
		direct, err := f.Eval(db, nil)
		if err != nil {
			t.Fatalf("trial %d direct: %v\n%s", trial, err, f)
		}
		if !direct.Equal(naive) {
			t.Fatalf("trial %d: direct != naive\n%s\ndirect:\n%s\nnaive:\n%s",
				trial, f, direct.Dump(), naive.Dump())
		}
		parallel, err := f.Eval(db, &EvalOptions{Parallel: true})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if !parallel.Equal(naive) {
			t.Fatalf("trial %d: parallel != naive", trial)
		}
		plan, err := randomLegalPlan(f, rng)
		if err != nil {
			t.Fatalf("trial %d plan: %v\n%s", trial, err, f)
		}
		res, err := plan.Execute(db, nil)
		if err != nil {
			t.Fatalf("trial %d plan exec: %v\n%s", trial, err, plan)
		}
		if !res.Answer.Equal(naive) {
			t.Fatalf("trial %d: plan != naive\n%s", trial, plan)
		}
	}
}
