package core

import (
	"fmt"
	"sort"

	"queryflocks/internal/datalog"
)

// This file enumerates the candidate subqueries of the generalized
// a-priori technique (§3). Following the Optimization Principle for
// Conjunctive Queries, candidates are the safe queries formed by deleting
// one or more subgoals from a rule; each candidate containing a parameter
// set S can prune values of S before the full query runs. For unions, a
// bound needs one safe subquery per member rule (§3.4).

// Subquery is one candidate pre-filter derived from a rule.
type Subquery struct {
	// Rule is the subquery: the original head with a subset of the body.
	Rule *datalog.Rule
	// Kept lists the retained body positions of the original rule.
	Kept []int
	// Params is the subquery's parameter set, sorted.
	Params []datalog.Param
}

// String renders the subquery.
func (s Subquery) String() string { return s.Rule.String() }

// EnumerateSubqueries returns every safe subquery formed by deleting one
// or more subgoals from r (nonempty proper subsets of the body), in
// deterministic order (fewer subgoals first, then by kept positions).
// Subqueries without parameters are included; callers filtering for
// pruning use ones with parameters.
func EnumerateSubqueries(r *datalog.Rule) []Subquery {
	n := len(r.Body)
	var out []Subquery
	for mask := 1; mask < (1<<n)-1; mask++ {
		var kept, dropped []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				kept = append(kept, i)
			} else {
				dropped = append(dropped, i)
			}
		}
		sub := r.DeleteSubgoals(dropped...)
		if !datalog.IsSafe(sub) {
			continue
		}
		out = append(out, Subquery{Rule: sub, Kept: kept, Params: sub.Params()})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Kept, out[j].Kept
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// SubqueriesWithParams returns the safe subqueries whose parameter set is
// exactly the given set (order-insensitive).
func SubqueriesWithParams(r *datalog.Rule, params []datalog.Param) []Subquery {
	want := paramKey(params)
	var out []Subquery
	for _, s := range EnumerateSubqueries(r) {
		if paramKey(s.Params) == want {
			out = append(out, s)
		}
	}
	return out
}

// MinimalSubqueryForParams returns the safe subquery with exactly the
// given parameters that keeps the fewest subgoals (ties broken by kept
// positions), or false if none exists. This is the per-rule choice of
// Example 3.3, where the safety condition leaves "essentially only one
// choice" per rule.
func MinimalSubqueryForParams(r *datalog.Rule, params []datalog.Param) (Subquery, bool) {
	subs := SubqueriesWithParams(r, params)
	if len(subs) == 0 {
		return Subquery{}, false
	}
	return subs[0], true // EnumerateSubqueries sorts fewest-subgoals first
}

// UnionSubquery builds the §3.4 upper bound for a union query restricted
// to the given parameters: one minimal safe subquery per member rule. It
// fails if some rule admits no safe subquery with exactly those
// parameters.
func UnionSubquery(u datalog.Union, params []datalog.Param) (datalog.Union, error) {
	out := make(datalog.Union, 0, len(u))
	for _, r := range u {
		s, ok := MinimalSubqueryForParams(r, params)
		if !ok {
			return nil, fmt.Errorf("core: rule %s has no safe subquery with parameters %v", r, params)
		}
		out = append(out, s.Rule)
	}
	return out, nil
}

// ParamSets returns the distinct parameter sets (as sorted slices) over
// which some safe subquery of r exists, smallest sets first. These are the
// candidate "selected sets of parameters" of §4.3's first search heuristic.
func ParamSets(r *datalog.Rule) [][]datalog.Param {
	seen := make(map[string][]datalog.Param)
	for _, s := range EnumerateSubqueries(r) {
		if len(s.Params) == 0 {
			continue
		}
		seen[paramKey(s.Params)] = s.Params
	}
	out := make([][]datalog.Param, 0, len(seen))
	for _, ps := range seen {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return paramKey(out[i]) < paramKey(out[j])
	})
	return out
}

func paramKey(params []datalog.Param) string {
	sorted := append([]datalog.Param(nil), params...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	key := ""
	for _, p := range sorted {
		key += "$" + string(p)
	}
	return key
}
