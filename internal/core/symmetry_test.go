package core

import (
	"strings"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// These tests cover renamed step references — the §3.1 "exploitation of
// their equivalence" by which one survivor relation filters several
// symmetric parameters.

// symmetricPlan builds the market-basket plan with a single item filter
// referenced for both $1 and $2.
func symmetricPlan(t *testing.T, f *Flock) *Plan {
	t.Helper()
	sub, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"1"})
	if !ok {
		t.Fatal("no $1 subquery")
	}
	step := FilterStep{Name: "okitem", Params: []datalog.Param{"1"}, Query: datalog.Union{sub.Rule}}
	final := FinalStepRefs(f, "ok",
		StepRef{Step: step, Args: []datalog.Param{"1"}},
		StepRef{Step: step, Args: []datalog.Param{"2"}},
	)
	plan, err := NewPlan(f, []FilterStep{step, final})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSymmetricReferenceValidatesAndRuns(t *testing.T) {
	f := MustParse(fig2Src)
	plan := symmetricPlan(t, f)
	if !strings.Contains(plan.String(), "okitem($2)") {
		t.Errorf("renamed reference missing:\n%s", plan)
	}
	db := basketsDB()
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Fatalf("symmetric plan differs:\nplan:\n%s\ndirect:\n%s", res.Answer.Dump(), direct.Dump())
	}
}

func TestAsymmetricRenamedReferenceRejected(t *testing.T) {
	// The medical flock is NOT symmetric in $s and $m: filtering $m with
	// the symptom-support relation okS would be unsound and must be
	// rejected.
	f := MustParse(fig3Src)
	okS, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"s"})
	if !ok {
		t.Fatal("no okS subquery")
	}
	step := FilterStep{Name: "okS", Params: []datalog.Param{"s"}, Query: datalog.Union{okS.Rule}}
	final := FinalStepRefs(f, "ok",
		StepRef{Step: step, Args: []datalog.Param{"s"}},
		StepRef{Step: step, Args: []datalog.Param{"m"}}, // unsound!
	)
	_, err := NewPlan(f, []FilterStep{step, final})
	if err == nil || !strings.Contains(err.Error(), "not a subquery") {
		t.Fatalf("asymmetric renamed reference should be rejected, got %v", err)
	}
}

func TestNonInjectiveRenamingRejected(t *testing.T) {
	// A step over both parameters referenced with a repeated argument.
	f := MustParse(fig2Src)
	pair, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"1", "2"})
	if !ok {
		t.Fatal("no pair subquery")
	}
	step := FilterStep{Name: "okpair", Params: []datalog.Param{"1", "2"}, Query: datalog.Union{pair.Rule}}
	final := FinalStepRefs(f, "ok",
		StepRef{Step: step},
		StepRef{Step: step, Args: []datalog.Param{"1", "1"}},
	)
	_, err := NewPlan(f, []FilterStep{step, final})
	if err == nil || !strings.Contains(err.Error(), "injective") {
		t.Fatalf("non-injective renaming should be rejected, got %v", err)
	}
}

func TestRenamedReferenceThroughChain(t *testing.T) {
	// A renamed reference to a step that itself references an earlier
	// step: the soundness check must recurse. Both steps filter $1 of the
	// symmetric basket flock, so referencing the second step as $2 is
	// legal.
	f := MustParse(fig2Src)
	sub, _ := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"1"})
	step0 := FilterStep{Name: "ok0", Params: []datalog.Param{"1"}, Query: datalog.Union{sub.Rule}}
	step1 := FilterStep{
		Name:   "ok1",
		Params: []datalog.Param{"1"},
		Query:  WithStepRefs(datalog.Union{sub.Rule.Clone()}, step0),
	}
	final := FinalStepRefs(f, "ok",
		StepRef{Step: step1, Args: []datalog.Param{"1"}},
		StepRef{Step: step1, Args: []datalog.Param{"2"}},
	)
	plan, err := NewPlan(f, []FilterStep{step0, step1, final})
	if err != nil {
		t.Fatal(err)
	}
	db := basketsDB()
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("chained symmetric plan differs from direct")
	}
}

func TestRenamedReferenceWeightedFlock(t *testing.T) {
	// Fig. 10's weighted flock is also symmetric in $1/$2; the shared
	// filter must remain legal with a SUM condition.
	f := MustParse(fig10Src)
	sub, ok := MinimalSubqueryForParams(f.Query[0], []datalog.Param{"1"})
	if !ok {
		t.Fatal("no $1 subquery for weighted flock")
	}
	step := FilterStep{Name: "okitem", Params: []datalog.Param{"1"}, Query: datalog.Union{sub.Rule}}
	final := FinalStepRefs(f, "ok",
		StepRef{Step: step, Args: []datalog.Param{"1"}},
		StepRef{Step: step, Args: []datalog.Param{"2"}},
	)
	plan, err := NewPlan(f, []FilterStep{step, final})
	if err != nil {
		t.Fatal(err)
	}

	db := basketsDB()
	imp := storage.NewRelation("importance", "BID", "W")
	for i := int64(1); i <= 4; i++ {
		imp.InsertValues(storage.Int(i), storage.Int(6))
	}
	db.Add(imp)
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Error("weighted symmetric plan differs from direct")
	}
}
