package core

import (
	"fmt"
	"sort"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/storage"
)

// This file makes one FILTER computation's group-by state serializable, so
// a cluster worker can evaluate its shard's partition of the extended
// answer and ship the per-group partial aggregates to the coordinator,
// which merges them with the same GroupAcc.Merge the parallel group-by
// uses in-process. The contract mirrors the worker-count invariant: merging
// the partial states of a disjoint partition, in any grouping of parts,
// yields exactly the single-node answer.

// GroupState is one parameter group's partial aggregate in wire form. The
// fields are a union over the four accumulator kinds (COUNT, COUNT
// distinct, SUM, MIN/MAX); only the fields of the computation's aggregate
// are populated. Values travel as storage literals (see storage.Value's
// Literal/ParseValue round-trip). A group whose monotone short-circuit
// fired ships Done alone with no aggregate payload — the merged verdict is
// already decided, and for COUNT-distinct this bounds the per-group wire
// cost by the threshold instead of the group's full value set.
type GroupState struct {
	Params   []string `json:"params"`
	Done     bool     `json:"done,omitempty"`
	Count    int64    `json:"count,omitempty"`
	Distinct []string `json:"distinct,omitempty"`
	Sum      float64  `json:"sum,omitempty"`
	SawNeg   bool     `json:"saw_neg,omitempty"`
	SawValue bool     `json:"saw_value,omitempty"`
	Cur      string   `json:"cur,omitempty"`
	Has      bool     `json:"has,omitempty"`
}

// EvalPartialGroups runs one FILTER computation (§4.1) up to — but not
// through — the filter verdict: it materializes the extended answer over
// db, aggregates it by parameter prefix, and returns every group's partial
// state in a deterministic order (sorted by parameter literals). This is
// the worker half of the cluster's scatter/gather; the coordinator folds
// the shards' states back together with MergeGroupStates.
func EvalPartialGroups(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter Filter, opts *EvalOptions) ([]GroupState, error) {

	if filter.PassesEmpty() {
		return nil, fmt.Errorf("core: filter %s accepts the empty result; the flock's answer would be infinite", filter)
	}
	opts = opts.withGate()
	ext, err := eval.EvalUnion(db, query, func(r *datalog.Rule) []datalog.Term {
		return extendedOut(params, r)
	}, opts.subquery().evalOpts())
	if err != nil {
		return nil, err
	}
	groups, _ := aggregateGroups(ext, len(params), filter, opts.workers())
	opts.gate().NoteLive(ext.Len() + len(groups))
	if err := opts.gate().Check(); err != nil {
		return nil, err
	}
	states := make([]GroupState, 0, len(groups))
	for _, g := range groups {
		states = append(states, exportGroupState(g))
	}
	sort.Slice(states, func(i, j int) bool {
		a, b := states[i].Params, states[j].Params
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return states, nil
}

// exportGroupState freezes one group's accumulator into wire form.
func exportGroupState(g *filterGroup) GroupState {
	s := GroupState{Params: make([]string, len(g.params))}
	for i, v := range g.params {
		s.Params[i] = v.Literal()
	}
	if g.done {
		// The verdict is final; the aggregate no longer matters.
		s.Done = true
		return s
	}
	switch acc := g.acc.(type) {
	case *countAcc:
		s.Count = acc.n
	case *countDistinctAcc:
		s.Distinct = make([]string, 0, len(acc.seen))
		for v := range acc.seen {
			s.Distinct = append(s.Distinct, v.Literal())
		}
		sort.Strings(s.Distinct)
	case *sumAcc:
		s.Sum = acc.sum
		s.SawNeg = acc.sawNeg
		s.SawValue = acc.sawValue
	case *minMaxAcc:
		s.Has = acc.has
		if acc.has {
			s.Cur = acc.cur.Literal()
		}
	default:
		panic(fmt.Sprintf("core: unknown accumulator %T", g.acc))
	}
	return s
}

// importGroupState thaws a wire-form state into a live group for f's
// aggregate. The accumulator is always built with f.NewGroup() — never
// left with decode-zero internals — so an empty or zero-count partial (a
// shard whose partition matched no tuples of the group) merges as an exact
// identity: COUNT-distinct keeps a live set, SUM keeps its saw-value flag,
// MIN/MAX its has flag.
func (f Filter) importGroupState(s GroupState) *filterGroup {
	params := make(storage.Tuple, len(s.Params))
	for i, lit := range s.Params {
		params[i] = storage.ParseValue(lit)
	}
	g := &filterGroup{params: params, acc: f.NewGroup(), done: s.Done}
	if s.Done {
		return g
	}
	switch acc := g.acc.(type) {
	case *countAcc:
		acc.n = s.Count
	case *countDistinctAcc:
		for _, lit := range s.Distinct {
			acc.seen[storage.ParseValue(lit).Normalize()] = struct{}{}
		}
	case *sumAcc:
		acc.sum = s.Sum
		acc.sawNeg = s.SawNeg
		acc.sawValue = s.SawValue
	case *minMaxAcc:
		acc.has = s.Has
		if s.Has {
			acc.cur = storage.ParseValue(s.Cur)
		}
	default:
		panic(fmt.Sprintf("core: unknown accumulator %T", g.acc))
	}
	return g
}

// MergeGroupStates folds per-shard partial states back into the FILTER
// computation's answer: the parameter tuples whose merged aggregate passes
// filter. Parts are merged in slice order (the cluster feeds them in shard
// order) with the same done-flag semantics as the in-process parallel
// group-by, so the result is bit-identical to evaluating the un-sharded
// input on one node. The returned count is the number of distinct groups
// seen across all parts, for observability.
func MergeGroupStates(filter Filter, name string, paramCols []string, parts [][]GroupState) (*storage.Relation, int, error) {
	merged := make(map[string]*filterGroup)
	var buf []byte
	for _, part := range parts {
		for _, s := range part {
			g := filter.importGroupState(s)
			if len(g.params) != len(paramCols) {
				return nil, 0, fmt.Errorf("core: partial group has %d params, want %d", len(g.params), len(paramCols))
			}
			buf = g.params.AppendKey(buf[:0])
			mergeFilterGroup(merged, string(buf), g)
		}
	}
	out := storage.NewRelation(name, paramCols...)
	for _, g := range merged {
		if g.done || g.acc.Passes() {
			out.Insert(g.params)
		}
	}
	return out, len(merged), nil
}
