package core

import (
	"fmt"
	"strings"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// Flock is a query flock (§2): a parametrized query — a union of extended
// conjunctive queries over parameters $p1..$pk — plus a filter condition.
// The flock's answer is the set of parameter assignments (tuples over the
// parameters, in Params order) for which the instantiated query's result
// satisfies the filter.
type Flock struct {
	// Params lists the flock's parameters in sorted order; answer relations
	// use one column per parameter, named "$<param>".
	Params []datalog.Param
	// Query is the parametrized query; all rules share head predicate and
	// arity.
	Query datalog.Union
	// Filter is the resolved filter condition.
	Filter Filter
	// Views are optional intermediate predicates (§2.2's extension),
	// materialized before the query runs. See views.go.
	Views []*datalog.Rule
}

// New validates and builds a flock from a query and a parsed filter.
// Requirements beyond rule safety (§3.2–§3.3):
//
//   - parameters may not appear in rule heads (a flock is "a query about
//     its parameters"; the head describes the per-assignment result);
//   - every rule must be safe;
//   - every parameter must appear in a positive relational subgoal of
//     every rule — otherwise some rule leaves the parameter unconstrained
//     and the flock's answer is infinite;
//   - the filter target must resolve against the head.
func New(query datalog.Union, spec datalog.FilterSpec) (*Flock, error) {
	return NewWithViews(nil, query, spec)
}

// NewWithViews is New with intermediate predicates (§2.2's extension):
// parameter-free, non-recursive rules defining derived relations the query
// may reference. Views are validated here and materialized at evaluation
// time.
func NewWithViews(views []*datalog.Rule, query datalog.Union, spec datalog.FilterSpec) (*Flock, error) {
	if err := query.Validate(); err != nil {
		return nil, err
	}
	if err := validateViews(views); err != nil {
		return nil, err
	}
	params := query.Params()
	if len(params) == 0 {
		return nil, fmt.Errorf("core: flock query has no parameters")
	}
	for _, r := range query {
		if hp := r.HeadParams(); len(hp) > 0 {
			return nil, fmt.Errorf("core: parameter %s appears in the head of %s", hp[0], r.Head)
		}
		if vs := datalog.CheckSafety(r); len(vs) > 0 {
			return nil, fmt.Errorf("core: rule %s is unsafe: %v", r, vs[0])
		}
		positive := make(map[datalog.Param]bool)
		for _, a := range r.PositiveAtoms() {
			for _, t := range a.Args {
				if p, ok := t.(datalog.Param); ok {
					positive[p] = true
				}
			}
		}
		for _, p := range params {
			if !positive[p] {
				return nil, fmt.Errorf("core: parameter %s does not appear in a positive subgoal of rule %s", p, r)
			}
		}
	}
	filter, err := NewFilter(spec, query[0].Head)
	if err != nil {
		return nil, err
	}
	return &Flock{Params: params, Query: query, Filter: filter, Views: views}, nil
}

// Parse builds a flock from the paper's QUERY:/FILTER: notation (Fig. 2).
func Parse(src string) (*Flock, error) {
	fs, err := datalog.ParseFlock(src)
	if err != nil {
		return nil, err
	}
	return NewWithViews(fs.Views, fs.Query, fs.Filter)
}

// MustParse is Parse panicking on error, for tests and examples with
// literal sources.
func MustParse(src string) *Flock {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// String renders the flock in the paper's notation.
func (f *Flock) String() string {
	var b strings.Builder
	if len(f.Views) > 0 {
		b.WriteString("VIEWS:\n")
		for _, v := range f.Views {
			fmt.Fprintf(&b, "%s\n", v)
		}
	}
	b.WriteString("QUERY:\n")
	for _, r := range f.Query {
		fmt.Fprintf(&b, "%s\n", r)
	}
	b.WriteString("FILTER:\n")
	b.WriteString(f.Filter.String())
	return b.String()
}

// ParamColumns returns the answer-relation column names, one per parameter.
func (f *Flock) ParamColumns() []string {
	out := make([]string, len(f.Params))
	for i, p := range f.Params {
		out[i] = "$" + string(p)
	}
	return out
}

// paramTerms returns the parameters as projection terms.
func paramTerms(params []datalog.Param) []datalog.Term {
	out := make([]datalog.Term, len(params))
	for i, p := range params {
		out[i] = p
	}
	return out
}

// extendedOut returns the projection (params..., head args...) for a rule —
// the "extended answer" whose grouping by parameters yields each
// assignment's query result.
func extendedOut(params []datalog.Param, r *datalog.Rule) []datalog.Term {
	out := paramTerms(params)
	return append(out, r.Head.Args...)
}

// BaseRelations returns the names of the stored relations the flock
// queries, sorted and deduplicated.
func (f *Flock) BaseRelations() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, r := range f.Query {
		for _, p := range r.Predicates() {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	return out
}

// CheckDatabase verifies that every relation the flock references exists
// in db with a compatible arity, returning the first problem found.
// Predicates defined by the flock's views are checked structurally (their
// bodies must resolve) rather than against db, since they materialize at
// evaluation time.
func (f *Flock) CheckDatabase(db *storage.Database) error {
	views := f.viewPredicates()
	viewArity := make(map[string]int, len(f.Views))
	for _, v := range f.Views {
		viewArity[v.Head.Pred] = len(v.Head.Args)
	}
	check := func(r *datalog.Rule) error {
		for _, sg := range r.Body {
			a, ok := sg.(*datalog.Atom)
			if !ok {
				continue
			}
			if views[a.Pred] {
				if viewArity[a.Pred] != len(a.Args) {
					return fmt.Errorf("core: atom %s has %d arguments but view %s has %d",
						a, len(a.Args), a.Pred, viewArity[a.Pred])
				}
				continue
			}
			src, err := db.Source(a.Pred)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			if src.Arity() != len(a.Args) {
				return fmt.Errorf("core: atom %s has %d arguments but relation %s has %d columns",
					a, len(a.Args), a.Pred, src.Arity())
			}
		}
		return nil
	}
	for _, v := range f.Views {
		if err := check(v); err != nil {
			return err
		}
	}
	for _, r := range f.Query {
		if err := check(r); err != nil {
			return err
		}
	}
	return nil
}
