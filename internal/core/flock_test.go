package core

import (
	"fmt"
	"strings"
	"testing"

	"queryflocks/internal/storage"
)

// Flock sources for the paper's running examples, with low thresholds so
// tiny test databases exercise them.
const (
	fig2Src = `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 2`

	fig3Src = `
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 2`

	fig4Src = `
QUERY:
answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
FILTER:
COUNT(answer(*)) >= 2`

	fig10Src = `
QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2
FILTER:
SUM(answer.W) >= 10`
)

// basketsDB: basket -> items, with (beer, diapers) in baskets 1 and 2.
func basketsDB() *storage.Database {
	b := storage.NewRelation("baskets", "BID", "Item")
	add := func(bid int64, items ...string) {
		for _, it := range items {
			b.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	add(1, "beer", "diapers", "relish")
	add(2, "beer", "diapers")
	add(3, "beer")
	add(4, "chips")
	db := storage.NewDatabase()
	db.Add(b)
	return db
}

func medicalDB() *storage.Database {
	db := storage.NewDatabase()
	diagnoses := storage.NewRelation("diagnoses", "Patient", "Disease")
	exhibits := storage.NewRelation("exhibits", "Patient", "Symptom")
	treatments := storage.NewRelation("treatments", "Patient", "Medicine")
	causes := storage.NewRelation("causes", "Disease", "Symptom")
	for _, rel := range []*storage.Relation{diagnoses, exhibits, treatments, causes} {
		db.Add(rel)
	}
	// Patients 1..3: flu (causes fever), take drugA, exhibit fever + rash.
	for p := int64(1); p <= 3; p++ {
		diagnoses.InsertValues(storage.Int(p), storage.Str("flu"))
		treatments.InsertValues(storage.Int(p), storage.Str("drugA"))
		exhibits.InsertValues(storage.Int(p), storage.Str("fever"))
		exhibits.InsertValues(storage.Int(p), storage.Str("rash"))
	}
	// Patient 4: cold (causes cough), drugB, exhibits cough only.
	diagnoses.InsertValues(storage.Int(4), storage.Str("cold"))
	treatments.InsertValues(storage.Int(4), storage.Str("drugB"))
	exhibits.InsertValues(storage.Int(4), storage.Str("cough"))
	causes.InsertValues(storage.Str("flu"), storage.Str("fever"))
	causes.InsertValues(storage.Str("cold"), storage.Str("cough"))
	return db
}

func TestParseFlockExamples(t *testing.T) {
	for name, src := range map[string]string{
		"fig2": fig2Src, "fig3": fig3Src, "fig4": fig4Src, "fig10": fig10Src,
	} {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(f.Params) != 2 {
			t.Errorf("%s: params = %v", name, f.Params)
		}
		// Round trip through String.
		if _, err := Parse(f.String()); err != nil {
			t.Errorf("%s: reparse of String failed: %v\n%s", name, err, f)
		}
	}
}

func TestFlockValidation(t *testing.T) {
	bad := []struct {
		name, src string
		wantErr   string
	}{
		{"no params", "QUERY:\nanswer(B) :- baskets(B,x)\nFILTER:\nCOUNT(answer.B) >= 2", "no parameters"},
		{"param in head", "QUERY:\nanswer($1) :- baskets(B,$1)\nFILTER:\nCOUNT(answer(*)) >= 2", ""},
		{"unsafe rule", "QUERY:\nanswer(B) :- baskets(B,$1) AND NOT other(C,$2)\nFILTER:\nCOUNT(answer.B) >= 2", "unsafe"},
		{"param missing from one rule", `QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2)
answer(B) :- baskets(B,$1)
FILTER:
COUNT(answer.B) >= 2`, "positive subgoal"},
		{"param only in negation", "QUERY:\nanswer(B) :- baskets(B,$1) AND NOT extra(B,$2) AND baskets(B,I)\nFILTER:\nCOUNT(answer.B) >= 2", ""},
		{"bad filter target", "QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nCOUNT(answer.Z) >= 2", "not a head variable"},
	}
	for _, c := range bad {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad source")
		}
	}()
	MustParse("garbage")
}

func TestFlockAccessors(t *testing.T) {
	f := MustParse(fig3Src)
	if got := f.ParamColumns(); len(got) != 2 || got[0] != "$m" || got[1] != "$s" {
		t.Errorf("ParamColumns = %v", got)
	}
	base := f.BaseRelations()
	want := []string{"causes", "diagnoses", "exhibits", "treatments"}
	if len(base) != len(want) {
		t.Fatalf("BaseRelations = %v", base)
	}
	for i := range want {
		if base[i] != want[i] {
			t.Errorf("BaseRelations[%d] = %q, want %q", i, base[i], want[i])
		}
	}
	if err := f.CheckDatabase(medicalDB()); err != nil {
		t.Errorf("CheckDatabase: %v", err)
	}
	if err := f.CheckDatabase(storage.NewDatabase()); err == nil {
		t.Error("CheckDatabase on empty db should fail")
	}
	// Arity mismatch.
	db := medicalDB()
	db.Add(storage.NewRelation("causes", "OnlyOne"))
	if err := f.CheckDatabase(db); err == nil {
		t.Error("CheckDatabase should catch arity mismatch")
	}
}

func TestEvalFig2Direct(t *testing.T) {
	f := MustParse(fig2Src)
	got, err := f.Eval(basketsDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only (beer, diapers) appears in >= 2 baskets.
	if got.Len() != 1 || !got.Contains(storage.Tuple{storage.Str("beer"), storage.Str("diapers")}) {
		t.Fatalf("got:\n%s", got.Dump())
	}
	cols := got.Columns()
	if cols[0] != "$1" || cols[1] != "$2" {
		t.Errorf("columns = %v", cols)
	}
}

func TestEvalFig3Direct(t *testing.T) {
	f := MustParse(fig3Src)
	got, err := f.Eval(medicalDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// rash is unexplained for patients 1-3 on drugA; fever is explained.
	if got.Len() != 1 {
		t.Fatalf("got:\n%s", got.Dump())
	}
	// Params sorted: $m, $s.
	if !got.Contains(storage.Tuple{storage.Str("drugA"), storage.Str("rash")}) {
		t.Errorf("missing (drugA, rash):\n%s", got.Dump())
	}
}

func TestEvalFig10WeightedDirect(t *testing.T) {
	db := basketsDB()
	imp := storage.NewRelation("importance", "BID", "W")
	imp.InsertValues(storage.Int(1), storage.Int(8))
	imp.InsertValues(storage.Int(2), storage.Int(3))
	imp.InsertValues(storage.Int(3), storage.Int(100))
	imp.InsertValues(storage.Int(4), storage.Int(1))
	db.Add(imp)

	f := MustParse(fig10Src)
	got, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (beer,diapers): baskets 1,2 weights 8+3=11 >= 10. (beer,relish):
	// basket 1 weight 8 < 10. (diapers,relish): 8 < 10.
	if got.Len() != 1 || !got.Contains(storage.Tuple{storage.Str("beer"), storage.Str("diapers")}) {
		t.Fatalf("got:\n%s", got.Dump())
	}
}

func TestEvalNaiveMatchesDirectOnExamples(t *testing.T) {
	cases := []struct {
		name string
		src  string
		db   *storage.Database
	}{
		{"fig2", fig2Src, basketsDB()},
		{"fig3", fig3Src, medicalDB()},
	}
	for _, c := range cases {
		f := MustParse(c.src)
		direct, err := f.Eval(c.db, nil)
		if err != nil {
			t.Fatalf("%s direct: %v", c.name, err)
		}
		naive, err := f.EvalNaive(c.db)
		if err != nil {
			t.Fatalf("%s naive: %v", c.name, err)
		}
		if !direct.Equal(naive) {
			t.Errorf("%s: direct != naive\ndirect:\n%s\nnaive:\n%s", c.name, direct.Dump(), naive.Dump())
		}
	}
}

func TestEvalParallelUnion(t *testing.T) {
	// Fig. 4's union evaluated with parallel branches must match the
	// sequential result.
	db := storage.NewDatabase()
	inTitle := storage.NewRelation("inTitle", "D", "W")
	inAnchor := storage.NewRelation("inAnchor", "A", "W")
	link := storage.NewRelation("link", "A", "D1", "D2")
	for i := 0; i < 200; i++ {
		d := storage.Str(fmt.Sprintf("d%d", i%40))
		w := storage.Str(fmt.Sprintf("w%d", i%23))
		inTitle.Insert(storage.Tuple{d, w})
		a := storage.Str(fmt.Sprintf("a%d", i%60))
		inAnchor.Insert(storage.Tuple{a, storage.Str(fmt.Sprintf("w%d", (i+7)%23))})
		link.Insert(storage.Tuple{a, d, storage.Str(fmt.Sprintf("d%d", (i+3)%40))})
	}
	db.Add(inTitle)
	db.Add(inAnchor)
	db.Add(link)

	f := MustParse(fig4Src)
	seq, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := f.Eval(db, &EvalOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(seq) {
		t.Fatalf("parallel union flock differs: %d vs %d", par.Len(), seq.Len())
	}
}

func TestEvalRejectsInfiniteFilter(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1)
FILTER:
COUNT(answer.B) <= 5`
	f := MustParse(src) // parses fine; evaluation must reject
	if _, err := f.Eval(basketsDB(), nil); err == nil {
		t.Error("direct eval should reject filter passing on empty")
	}
	if _, err := f.EvalNaive(basketsDB()); err == nil {
		t.Error("naive eval should reject filter passing on empty")
	}
}

func TestNaiveLimit(t *testing.T) {
	// 3 params over a relation with many values would exceed any tiny
	// limit; simulate by checking the error path with a big cross product.
	src := `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND baskets(B,$3) AND baskets(B,$4) AND baskets(B,$5) AND baskets(B,$6) AND baskets(B,$7) AND baskets(B,$8)
FILTER:
COUNT(answer.B) >= 2`
	f := MustParse(src)
	db := storage.NewDatabase()
	b := storage.NewRelation("baskets", "BID", "Item")
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			b.InsertValues(storage.Int(int64(i)), storage.Str(strings.Repeat("x", j+1)))
		}
	}
	db.Add(b)
	if _, err := f.EvalNaive(db); err == nil || !strings.Contains(err.Error(), "assignments") {
		t.Errorf("expected NaiveLimit error, got %v", err)
	}
}
