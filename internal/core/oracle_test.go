package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// This file property-tests the paper's central equivalence claims on
// randomized instances:
//
//   - the direct group-by evaluator agrees with the naive generate-and-test
//     semantics (§2);
//   - every legal plan built from random safe subqueries (§4.2) computes
//     the same answer (the a-priori soundness claim of §3).

// randomFlockDB builds a random database for the fixed schema used by
// randomFlock: r(A,B), s(B,C), t(A).
func randomFlockDB(rng *rand.Rand) *storage.Database {
	db := storage.NewDatabase()
	dom := []storage.Value{
		storage.Int(0), storage.Int(1), storage.Int(2),
		storage.Str("a"), storage.Str("b"),
	}
	mk := func(name string, arity, maxRows int) {
		cols := make([]string, arity)
		for i := range cols {
			cols[i] = fmt.Sprintf("C%d", i)
		}
		rel := storage.NewRelation(name, cols...)
		for i := 0; i < rng.Intn(maxRows+1); i++ {
			t := make(storage.Tuple, arity)
			for j := range t {
				t[j] = dom[rng.Intn(len(dom))]
			}
			rel.Insert(t)
		}
		db.Add(rel)
	}
	mk("r", 2, 14)
	mk("s", 2, 14)
	mk("t", 1, 5)
	return db
}

// randomRuleBody draws a random extended-CQ body over the fixed schema.
func randomRuleBody(rng *rand.Rand, terms []datalog.Term) []datalog.Subgoal {
	n := 2 + rng.Intn(3)
	body := make([]datalog.Subgoal, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0, 1, 2: // positive atom
			pred := []string{"r", "s"}[rng.Intn(2)]
			body = append(body, datalog.NewAtom(pred,
				terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))]))
		case 3:
			body = append(body, datalog.NewAtom("t", terms[rng.Intn(len(terms))]))
		case 4: // negated atom
			a := datalog.NewAtom([]string{"r", "s"}[rng.Intn(2)],
				terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))])
			a.Negated = true
			body = append(body, a)
		default:
			ops := []datalog.CmpOp{datalog.Lt, datalog.Le, datalog.Ne}
			body = append(body, &datalog.Comparison{
				Op:   ops[rng.Intn(len(ops))],
				Left: terms[rng.Intn(len(terms))], Right: terms[rng.Intn(len(terms))],
			})
		}
	}
	return body
}

// randomFlock builds a random valid flock over the schema above (roughly
// one in three a 2-rule union, §3.4), retrying until validation passes.
func randomFlock(rng *rand.Rand) *Flock {
	terms := []datalog.Term{
		datalog.Var("X"), datalog.Var("Y"),
		datalog.Param("p"), datalog.Param("q"),
		datalog.CInt(1),
	}
	for {
		rules := 1
		if rng.Intn(3) == 0 {
			rules = 2
		}
		u := make(datalog.Union, 0, rules)
		for i := 0; i < rules; i++ {
			u = append(u, datalog.NewRule(
				datalog.NewAtom("answer", datalog.Var("X")),
				randomRuleBody(rng, terms)...))
		}
		threshold := 1 + rng.Intn(3)
		spec := datalog.FilterSpec{
			Agg: datalog.AggCount, Op: datalog.Ge,
			Threshold: storage.Int(int64(threshold)),
		}
		f, err := New(u, spec)
		if err == nil {
			return f
		}
	}
}

// randomLegalPlan builds a random plan. For single-rule flocks it draws
// random safe subqueries (possibly referencing earlier steps); for union
// flocks it draws random parameter sets and uses the §3.4 per-rule
// minimal subqueries.
func randomLegalPlan(f *Flock, rng *rand.Rand) (*Plan, error) {
	var steps []FilterStep
	nPre := rng.Intn(3)
	if len(f.Query) == 1 {
		subs := EnumerateSubqueries(f.Query[0])
		var withParams []Subquery
		for _, s := range subs {
			if len(s.Params) > 0 {
				withParams = append(withParams, s)
			}
		}
		for i := 0; i < nPre && len(withParams) > 0; i++ {
			s := withParams[rng.Intn(len(withParams))]
			q := datalog.Union{s.Rule}
			// Optionally reference a prior step whose params are a subset.
			if len(steps) > 0 && rng.Intn(2) == 0 {
				prev := steps[rng.Intn(len(steps))]
				if paramSubset(prev.Params, s.Params) {
					q = WithStepRefs(q, prev)
				}
			}
			steps = append(steps, FilterStep{
				Name:   fmt.Sprintf("pre%d", i),
				Params: s.Params,
				Query:  q,
			})
		}
	} else {
		for i := 0; i < nPre; i++ {
			// Random nonempty subset of the flock's parameters.
			var set []datalog.Param
			for _, p := range f.Params {
				if rng.Intn(2) == 0 {
					set = append(set, p)
				}
			}
			if len(set) == 0 {
				set = []datalog.Param{f.Params[rng.Intn(len(f.Params))]}
			}
			sub, err := UnionSubquery(f.Query, set)
			if err != nil {
				continue // no safe per-rule subquery for this set
			}
			steps = append(steps, FilterStep{
				Name:   fmt.Sprintf("pre%d", i),
				Params: sortedParamsCopy(set),
				Query:  sub,
			})
		}
	}
	steps = append(steps, FinalStep(f, "ok", steps...))
	return NewPlan(f, steps)
}

func sortedParamsCopy(set []datalog.Param) []datalog.Param {
	out := append([]datalog.Param(nil), set...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func paramSubset(sub, super []datalog.Param) bool {
	set := make(map[datalog.Param]bool)
	for _, p := range super {
		set[p] = true
	}
	for _, p := range sub {
		if !set[p] {
			return false
		}
	}
	return true
}

func TestDirectMatchesNaiveRandomized(t *testing.T) {
	const trials = 250
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < trials; trial++ {
		db := randomFlockDB(rng)
		f := randomFlock(rng)
		naive, err := f.EvalNaive(db)
		if err != nil {
			t.Fatalf("trial %d naive: %v\n%s", trial, err, f)
		}
		direct, err := f.Eval(db, nil)
		if err != nil {
			t.Fatalf("trial %d direct: %v\n%s", trial, err, f)
		}
		if !direct.Equal(naive) {
			t.Fatalf("trial %d: direct != naive\nflock:\n%s\ndirect:\n%s\nnaive:\n%s\ndb: %s",
				trial, f, direct.Dump(), naive.Dump(), db)
		}
	}
}

func TestRandomLegalPlansMatchDirect(t *testing.T) {
	const trials = 250
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		db := randomFlockDB(rng)
		f := randomFlock(rng)
		direct, err := f.Eval(db, nil)
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		plan, err := randomLegalPlan(f, rng)
		if err != nil {
			t.Fatalf("trial %d plan build: %v\nflock:\n%s", trial, err, f)
		}
		res, err := plan.Execute(db, nil)
		if err != nil {
			t.Fatalf("trial %d plan exec: %v\nplan:\n%s", trial, err, plan)
		}
		if !res.Answer.Equal(direct) {
			t.Fatalf("trial %d: plan != direct\nflock:\n%s\nplan:\n%s\nplan answer:\n%s\ndirect:\n%s\ndb: %s",
				trial, f, plan, res.Answer.Dump(), direct.Dump(), db)
		}
	}
}

func TestGroupAndFilterDirectly(t *testing.T) {
	// Extended answer: ($1, B) pairs.
	ext := storage.NewRelation("ext", "$1", "B")
	for _, row := range [][2]int64{{1, 10}, {1, 11}, {2, 10}, {3, 10}, {3, 11}, {3, 12}} {
		ext.InsertValues(storage.Int(row[0]), storage.Int(row[1]))
	}
	f := mkFilter(t, "COUNT(answer.B) >= 2", "answer(B) :- r(B)")
	got := GroupAndFilter(ext, 1, f, "out")
	if got.Len() != 2 {
		t.Fatalf("got:\n%s", got.Dump())
	}
	for _, want := range []int64{1, 3} {
		if !got.Contains(storage.Tuple{storage.Int(want)}) {
			t.Errorf("missing group %d", want)
		}
	}
	if got.Name() != "out" || got.Columns()[0] != "$1" {
		t.Errorf("relation shape: %s", got)
	}
}
