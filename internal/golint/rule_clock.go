package golint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DL006 — wall clock and randomness as data. The deterministic packages
// derive answers, shard maps, canonical keys, and sort keys from the
// data alone; a clock reading or random draw that flows into any of
// those makes two runs disagree. Two checks:
//
//   - importing math/rand (or math/rand/v2) is flagged outright — no
//     engine decision may sample randomness;
//   - time.Now is flagged unless its value is consumed only as a
//     duration or deadline measurement: time.Since(t), t.Sub(u),
//     t.After/Before/Equal(u), t.IsZero(). Timing operators for
//     observability stay clean under this contract; storing the reading
//     in a field, returning it, or formatting it is flagged (suppress
//     with a reason when the stored reading is genuinely a resource
//     deadline, never answer data — see physical.NewGate).
func ruleClock(a *analyzer) {
	if !matchPkg(a.cfg.DeterministicPkgs, a.pkg.Path) {
		return
	}
	for _, f := range a.pkg.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				a.report("DL006", imp.Pos(),
					"deterministic package imports %s: engine decisions may not sample randomness; derive choices from the data (hash the canonical key) instead",
					strings.Trim(imp.Path.Value, `"`))
			}
		}
	}
	for _, fd := range a.enclosingFuncs() {
		fd := fd
		withParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !a.isTimeCall(call, "Now") {
				return true
			}
			if !a.clockUseAllowed(fd, call, stack) {
				a.report("DL006", call.Pos(),
					"time.Now() escapes as data in a deterministic package: only duration/deadline measurement (Since, Sub, After, Before) is order-safe; anything else makes output depend on the wall clock")
			}
			return true
		})
	}
}

// isTimeCall reports whether call is time.<name>(...).
func (a *analyzer) isTimeCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name && a.isPkg(sel.X, "time")
}

// measurementMethods are the time.Time methods that consume a clock
// reading without letting it escape as data.
var measurementMethods = map[string]bool{
	"Sub": true, "After": true, "Before": true, "Equal": true, "IsZero": true, "Compare": true,
}

// clockUseAllowed decides whether a time.Now() call's result is consumed
// only by duration/deadline measurement.
func (a *analyzer) clockUseAllowed(fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// time.Now().M(...)
		return measurementMethods[parent.Sel.Name]
	case *ast.CallExpr:
		// f(time.Now()): allowed for time.Since and measurement methods.
		if a.isTimeCall(parent, "Since") {
			return true
		}
		if sel, ok := parent.Fun.(*ast.SelectorExpr); ok && measurementMethods[sel.Sel.Name] {
			return true
		}
		return false
	case *ast.AssignStmt:
		obj := a.assignTarget(parent, call)
		if obj == nil {
			return false // field store, index store, or unresolved
		}
		return a.varUsesAreMeasurements(fd, obj)
	case *ast.ValueSpec:
		for i, v := range parent.Values {
			if v == call && i < len(parent.Names) {
				if obj := a.pkg.Info.Defs[parent.Names[i]]; obj != nil {
					return a.varUsesAreMeasurements(fd, obj)
				}
			}
		}
		return false
	case *ast.ExprStmt:
		return true // bare call, result discarded
	}
	return false
}

// assignTarget resolves the identifier a call's result is assigned to
// within an assignment, or nil when the target is not a plain local.
func (a *analyzer) assignTarget(as *ast.AssignStmt, rhs ast.Expr) types.Object {
	for i, r := range as.Rhs {
		if r != rhs || i >= len(as.Lhs) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok {
			return a.objOf(id)
		}
	}
	return nil
}

// varUsesAreMeasurements checks every use of obj in the function: each
// must be a measurement (time.Since(v), v.Sub/After/Before/..., an
// argument to such a method, a reassignment, or the declaration itself).
func (a *analyzer) varUsesAreMeasurements(fd *ast.FuncDecl, obj types.Object) bool {
	allowed := true
	withParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if !allowed {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || a.objOf(id) != obj || len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			if measurementMethods[parent.Sel.Name] {
				return true // v.Sub(...), v.After(...)
			}
		case *ast.CallExpr:
			if a.isTimeCall(parent, "Since") {
				return true // time.Since(v)
			}
			if sel, ok := parent.Fun.(*ast.SelectorExpr); ok && measurementMethods[sel.Sel.Name] {
				return true // u.Sub(v)
			}
		case *ast.AssignStmt:
			for _, l := range parent.Lhs {
				if l == ast.Expr(id) {
					return true // reassignment
				}
			}
		case *ast.ValueSpec:
			return true // declaration
		}
		allowed = false
		return false
	})
	return allowed
}
