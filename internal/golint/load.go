package golint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit the rules run
// over. Only non-test files are loaded — the invariants govern production
// code, and test files routinely construct adversarial values on purpose.
type Package struct {
	// Path is the import path (module path + directory), the key the
	// per-package rule scopes match on.
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // sorted by file name for deterministic output
	// Pkg and Info carry the go/types results. Info is always non-nil;
	// when type-checking failed (TypeErrs non-empty) it holds whatever
	// was resolved before the failure, and the rules degrade gracefully.
	Pkg      *types.Package
	Info     *types.Info
	TypeErrs []error
}

// Loader parses and type-checks packages. One Loader shares a FileSet and
// a source importer across every Load call, so dependency packages are
// type-checked once however many targets import them.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer (no
// module dependencies; dependencies are type-checked from source).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses and type-checks the package in dir. Parse errors fail the
// load; type errors are collected on the returned Package so syntactic
// rules still run.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := importPath(abs)
	if err != nil {
		return nil, err
	}
	pkgs, err := parser.ParseDir(l.fset, abs, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("golint: parsing %s: %w", dir, err)
	}
	apkg := pickPackage(pkgs)
	if apkg == nil {
		return nil, fmt.Errorf("golint: no buildable Go package in %s", dir)
	}
	names := make([]string, 0, len(apkg.Files))
	for name := range apkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		files = append(files, apkg.Files[name])
	}

	p := &Package{
		Path:  path,
		Dir:   abs,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	p.Pkg, _ = conf.Check(path, l.fset, files, p.Info)
	return p, nil
}

// pickPackage chooses the buildable package from a parsed directory:
// the only one, or — when an external _test package shares the dir —
// the one whose name does not end in "_test".
func pickPackage(pkgs map[string]*ast.Package) *ast.Package {
	var chosen *ast.Package
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if chosen == nil {
			chosen = pkgs[name]
		}
	}
	return chosen
}

// importPath derives a directory's import path from the enclosing
// module's go.mod.
func importPath(dir string) (string, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return module, nil
	}
	return module + "/" + filepath.ToSlash(rel), nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		raw, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(raw), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("golint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("golint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// ExpandPatterns resolves command-line package arguments to directories.
// An argument ending in "/..." walks the tree rooted at its prefix;
// anything else names one directory. Hidden directories, "_"-prefixed
// directories, and "testdata" (fixture corpora, deliberately full of
// violations) are skipped during walks.
func ExpandPatterns(args []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if root == "" || root == "."+string(filepath.Separator) {
			root = "."
		}
		if !recursive {
			add(filepath.Clean(arg))
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
