package golint

import (
	"go/ast"
	"regexp"
	"strings"
)

// A suppression is one parsed "//lint:ignore DLxxx reason" comment. It
// silences findings of exactly one code on exactly one line: the line the
// comment ends on (end-of-line form) or the line directly below it
// (own-line form).
type suppression struct {
	file   string
	line   int
	code   string
	reason string
	used   bool
	// malformed flags a lint:ignore comment that did not parse (missing
	// code or reason); it suppresses nothing and is reported directly.
	malformed bool
}

var suppressRE = regexp.MustCompile(`^//\s*lint:ignore\s+(DL\d{3})\s+(\S.*)$`)

// collectSuppressions parses every lint:ignore comment in the package.
func collectSuppressions(p *Package) []*suppression {
	var sups []*suppression
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := p.Fset.Position(c.End())
				m := suppressRE.FindStringSubmatch(c.Text)
				if m == nil {
					sups = append(sups, &suppression{file: pos.Filename, line: pos.Line, malformed: true})
					continue
				}
				sups = append(sups, &suppression{
					file: pos.Filename, line: pos.Line,
					code: m[1], reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return sups
}

// applySuppressions filters findings through the package's suppressions
// and appends a DL000 warning for every suppression that is malformed or
// matched nothing. Each suppression covers its own line and the next, so
// the end-of-line and comment-above forms both work; a finding is dropped
// by the first matching suppression only.
func applySuppressions(p *Package, findings []Finding) []Finding {
	sups := collectSuppressions(p)
	if len(sups) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, s := range sups {
			if s.malformed || s.code != f.Code || s.file != f.File {
				continue
			}
			if s.line == f.Line || s.line+1 == f.Line {
				s.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, s := range sups {
		switch {
		case s.malformed:
			kept = append(kept, Finding{
				Code: "DL000", Severity: SevWarning, File: s.file, Line: s.line, Col: 1,
				Message: "malformed suppression: want //lint:ignore DLxxx reason",
			})
		case !s.used:
			kept = append(kept, Finding{
				Code: "DL000", Severity: SevWarning, File: s.file, Line: s.line, Col: 1,
				Message: "unused suppression for " + s.code + ": no such finding on this or the next line",
			})
		}
	}
	return kept
}

// fileFor returns the *ast.File containing pos, for rules that need the
// file's imports.
func (p *Package) fileFor(n ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= n.Pos() && n.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}
