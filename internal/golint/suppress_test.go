package golint

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// findingKeys compresses findings to "line:code" for exact-set
// assertions (the suppress fixture cannot carry want markers — the
// suppression comments occupy the marker position).
func findingKeys(fs []Finding) []string {
	keys := make([]string, len(fs))
	for i, f := range fs {
		keys[i] = fmt.Sprintf("%d:%s", f.Line, f.Code)
	}
	return keys
}

func TestSuppressions(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	findings := Analyze(pkg, fixtureConfig())

	raw := fixtureSource(t, pkg, "suppress.go")
	lineOf := func(marker string) int {
		t.Helper()
		for i, line := range strings.Split(raw, "\n") {
			if strings.Contains(line, marker) || strings.TrimSpace(line) == marker {
				return i + 1
			}
		}
		t.Fatalf("marker %q not found", marker)
		return 0
	}
	// The malformed suppression is the exact line "//lint:ignore DL005";
	// substring search would hit the well-formed ones first.
	malformedLine := 0
	for i, line := range strings.Split(raw, "\n") {
		if strings.TrimSpace(line) == "//lint:ignore DL005" {
			malformedLine = i + 1
			break
		}
	}
	if malformedLine == 0 {
		t.Fatal("malformed suppression line not found")
	}

	want := map[string]Severity{
		// WrongCode: the DL005 survives (wrong code suppressed) and the
		// DL001 suppression is unused.
		fmt.Sprintf("%d:DL005", lineOf("wrong code on purpose")+1):        SevError,
		fmt.Sprintf("%d:DL000", lineOf("wrong code on purpose")):          SevWarning,
		// OneLineOnly: the violation two lines below the comment survives.
		fmt.Sprintf("%d:DL005", lineOf("covers only the next line")+2):    SevError,
		fmt.Sprintf("%d:DL000", lineOf("covers only the next line")):      SevWarning,
		// Unused: reported.
		fmt.Sprintf("%d:DL000", lineOf("nothing to silence here")):        SevWarning,
		// Malformed: reported, and the finding below it survives.
		fmt.Sprintf("%d:DL000", malformedLine):   SevWarning,
		fmt.Sprintf("%d:DL005", malformedLine+1): SevError,
	}

	got := make(map[string]Severity)
	for _, f := range findings {
		key := fmt.Sprintf("%d:%s", f.Line, f.Code)
		if _, dup := got[key]; dup {
			t.Errorf("duplicate finding %s", key)
		}
		got[key] = f.Severity
	}
	for k, sev := range want {
		if gsev, ok := got[k]; !ok {
			t.Errorf("missing finding %s\ngot:\n%s", k, Render(findings))
		} else if gsev != sev {
			t.Errorf("finding %s: severity %v, want %v", k, gsev, sev)
		}
		delete(got, k)
	}
	for k := range got {
		t.Errorf("unexpected finding %s (the EOL and line-above suppressions must silence theirs)\nall:\n%s", k, Render(findings))
	}
}

// fixtureSource reads one fixture file's text.
func fixtureSource(t *testing.T, pkg *Package, base string) string {
	t.Helper()
	for _, f := range pkg.Files {
		pos := pkg.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, base) {
			raw, err := os.ReadFile(pos.Filename)
			if err != nil {
				t.Fatal(err)
			}
			return string(raw)
		}
	}
	t.Fatalf("fixture file %s not loaded", base)
	return ""
}

// TestSuppressionSilencesExactlyOneRule: a DL005 suppression on a line
// that (hypothetically) also carried another code must not silence the
// other code. Constructed directly against applySuppressions to keep the
// fixture simple.
func TestSuppressionScope(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	line := 0
	raw := fixtureSource(t, pkg, "suppress.go")
	for i, l := range strings.Split(raw, "\n") {
		if strings.Contains(l, "raw identity is the point") {
			line = i + 1
			break
		}
	}
	if line == 0 {
		t.Fatal("suppression line not found")
	}
	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	fs := applySuppressions(pkg, []Finding{
		{Code: "DL005", Severity: SevError, File: file, Line: line, Message: "same line, matching code"},
		{Code: "DL001", Severity: SevError, File: file, Line: line, Message: "same line, different code"},
	})
	var survived []string
	for _, f := range fs {
		if f.Code != "DL000" {
			survived = append(survived, f.Code)
		}
	}
	if len(survived) != 1 || survived[0] != "DL001" {
		t.Fatalf("suppression must silence exactly its own code: survived %v\n%s", survived, Render(fs))
	}
}

// TestJSONRoundTrip validates the -json schema benchcheck-style: encode,
// decode, and re-validate every field against its contract.
func TestJSONRoundTrip(t *testing.T) {
	pkg := loadFixture(t, "dl005")
	findings := Analyze(pkg, fixtureConfig())
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings to round-trip")
	}
	raw, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	var back []Finding
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(findings) {
		t.Fatalf("round-trip changed count: %d -> %d", len(findings), len(back))
	}
	codeRE := regexp.MustCompile(`^DL\d{3}$`)
	for i, f := range back {
		if f != findings[i] {
			t.Errorf("finding %d changed across round-trip:\n  %+v\n  %+v", i, findings[i], f)
		}
		if !codeRE.MatchString(f.Code) {
			t.Errorf("finding %d: bad code %q", i, f.Code)
		}
		if f.File == "" || f.Line <= 0 || f.Col <= 0 {
			t.Errorf("finding %d: missing position: %+v", i, f)
		}
		if f.Message == "" {
			t.Errorf("finding %d: empty message", i)
		}
		if f.Severity != SevError && f.Severity != SevWarning && f.Severity != SevInfo {
			t.Errorf("finding %d: bad severity %d", i, int(f.Severity))
		}
	}
	// Severity strings must decode back to themselves.
	for _, s := range []Severity{SevInfo, SevWarning, SevError} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var rs Severity
		if err := json.Unmarshal(b, &rs); err != nil || rs != s {
			t.Errorf("severity %v: round-trip gave %v, %v", s, rs, err)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("unknown severity string must not decode")
	}
}
