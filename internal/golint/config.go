package golint

import "strings"

// Config scopes the rules to the packages whose conventions they encode.
// Paths are matched as import-path suffixes on whole segments, so the
// defaults survive a module rename and tests can point the same rules at
// fixture packages.
type Config struct {
	// DeterministicPkgs are the packages whose outputs must be
	// bit-identical run to run (answers, shard maps, canonical keys,
	// reports diffed by golden tests). DL001 (ordered-output map
	// iteration), DL003 (fan-in merge order), and DL006 (wall-clock /
	// rand as data) fire here.
	DeterministicPkgs []string
	// StreamingPkgs hold the batch-at-a-time pull operators whose loops
	// must consult the Limits gate (DL002).
	StreamingPkgs []string
	// DurablePkgs publish versioned on-disk state and must fsync before
	// any publish (DL004).
	DurablePkgs []string
}

// DefaultConfig scopes the rules to the engine packages named in the
// invariants catalog (docs/DESIGN.md, "Engine invariants").
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"internal/core",
			"internal/physical",
			"internal/cluster",
			"internal/storage",
			"internal/serve",
		},
		StreamingPkgs: []string{"internal/physical"},
		DurablePkgs:   []string{"internal/storage", "cmd/flockd"},
	}
}

// matchPkg reports whether the import path ends with one of the patterns
// on a whole-segment boundary ("internal/core" matches
// "queryflocks/internal/core" but not "x/yinternal/core").
func matchPkg(patterns []string, path string) bool {
	for _, p := range patterns {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}
