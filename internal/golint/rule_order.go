package golint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DL001 — ordered-output map iteration. Go randomizes map iteration
// order, so a `for range` over a map whose body builds ordered output
// (appends to a slice, writes to a strings.Builder or bytes.Buffer,
// sends on a channel) makes the result differ run to run. In the
// deterministic-answer packages that breaks the engine's core promise:
// bit-identical answers, reports, and on-disk artifacts at every worker
// and shard count. The loop is exempt when every slice it appends to is
// sorted afterwards in the same function — the canonical collect-then-
// sort idiom (see storage.bucketize) — or when its effects are order-
// insensitive (map/set writes, commutative counters).
func ruleMapOrder(a *analyzer) {
	if !matchPkg(a.cfg.DeterministicPkgs, a.pkg.Path) {
		return
	}
	for _, fd := range a.enclosingFuncs() {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := a.typeOf(rng.X); t == nil || !isMap(t) {
				return true
			}
			for _, eff := range a.orderedEffects(rng) {
				if eff.target != nil && a.sortedAfter(fd, rng, eff.target) {
					continue
				}
				a.report("DL001", eff.pos,
					"map iteration order is random: %s inside `for range %s` makes the output order nondeterministic; sort the keys first, or sort the result before it escapes",
					eff.desc, exprString(rng.X))
				return true // one finding per loop
			}
			return true
		})
	}
}

// DL003 — fan-in merge order. Collecting goroutine results by draining a
// channel appends in arrival order, which varies with scheduling; merged
// answers must instead be placed by worker/shard index (par.Run bodies,
// cluster.Scatter results) so per-chunk results concatenate in a
// deterministic order. Exempt when the gathered slice is sorted
// afterwards in the same function.
func ruleMergeOrder(a *analyzer) {
	if !matchPkg(a.cfg.DeterministicPkgs, a.pkg.Path) {
		return
	}
	for _, fd := range a.enclosingFuncs() {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := a.typeOf(rng.X); t == nil || !isChan(t) {
				return true
			}
			for _, eff := range a.orderedEffects(rng) {
				if eff.kind != effAppend {
					continue // builder writes over a channel drain are rare; appends are the merge hazard
				}
				if a.sortedAfter(fd, rng, eff.target) {
					continue
				}
				a.report("DL003", eff.pos,
					"fan-in gathers in channel-arrival order: %s inside `for range %s` depends on goroutine scheduling; index the result by worker/shard instead, or sort it before it escapes",
					eff.desc, exprString(rng.X))
				return true
			}
			return true
		})
	}
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

type effectKind int

const (
	effAppend effectKind = iota
	effWrite
	effSend
)

// orderedEffect is one order-sensitive operation inside a range body.
type orderedEffect struct {
	kind   effectKind
	pos    token.Pos
	desc   string
	target types.Object // the appended-to slice, when identifiable
}

// orderedEffects finds order-sensitive operations in a range body:
// appends to slices declared outside the loop, writes to outer
// strings.Builder/bytes.Buffer values, and channel sends. Appends to
// loop-local slices are per-iteration scratch and do not count.
func (a *analyzer) orderedEffects(rng *ast.RangeStmt) []orderedEffect {
	var effs []orderedEffect
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || len(call.Args) == 0 {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := a.objOf(id); obj != nil {
					if _, builtin := obj.(*types.Builtin); !builtin {
						continue // shadowed append
					}
				}
				target := a.rootObj(call.Args[0])
				if target != nil && declaredWithin(target, rng.Body.Pos(), rng.Body.End()) {
					continue
				}
				desc := "append"
				if i < len(v.Lhs) {
					desc = "appending to " + exprString(v.Lhs[i])
				}
				effs = append(effs, orderedEffect{kind: effAppend, pos: call.Pos(), desc: desc, target: target})
			}
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok || !isOrderedWrite(sel.Sel.Name) {
				return true
			}
			t := a.typeOf(sel.X)
			if t == nil || !(isNamed(t, "strings", "Builder") || isNamed(t, "bytes", "Buffer")) {
				return true
			}
			if recv := a.rootObj(sel.X); recv != nil && declaredWithin(recv, rng.Body.Pos(), rng.Body.End()) {
				return true
			}
			effs = append(effs, orderedEffect{kind: effWrite, pos: v.Pos(), desc: "writing to " + exprString(sel.X)})
		case *ast.SendStmt:
			effs = append(effs, orderedEffect{kind: effSend, pos: v.Pos(), desc: "sending on " + exprString(v.Chan)})
		}
		return true
	})
	return effs
}

func isOrderedWrite(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// rootObj resolves the base identifier of an expression (x, x[i], x.f)
// to its object, or nil.
func (a *analyzer) rootObj(e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return a.objOf(v)
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether target is passed to a sort call after the
// loop in the same function — the collect-then-sort idiom that restores
// a deterministic order. A "sort call" is sort.*/slices.* directly, or a
// same-package helper whose own body (transitively) contains one, so
// wrappers like a local sortValues(vs) count.
func (a *analyzer) sortedAfter(fd *ast.FuncDecl, rng *ast.RangeStmt, target types.Object) bool {
	if target == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !a.isSortCall(call, make(map[*ast.FuncDecl]bool)) {
			return true
		}
		for _, arg := range call.Args {
			argSeen := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && a.objOf(id) == target {
					argSeen = true
				}
				return !argSeen
			})
			if argSeen {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// isSortCall reports whether a call sorts: sort.*/slices.* directly, or a
// same-package function whose body contains a sort call. seen breaks
// recursion cycles.
func (a *analyzer) isSortCall(call *ast.CallExpr, seen map[*ast.FuncDecl]bool) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if a.isPkg(sel.X, "sort") || a.isPkg(sel.X, "slices") {
			return true
		}
	}
	decl := a.resolveCallee(call)
	if decl == nil || decl.Body == nil || seen[decl] {
		return false
	}
	seen[decl] = true
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok && a.isSortCall(inner, seen) {
			found = true
			return false
		}
		return true
	})
	return found
}
