package golint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DL005 — raw Value equality. storage.Value defines semantic equality
// via Equal/Compare and serializes its equality class via AppendKey:
// Int(1) and Float(1) are Equal, join, and dedupe together (the PR 2
// normalization). Go's == on the struct compares the representation, not
// the class, so outside internal/storage any ==/!=, switch, or map-key
// use of a raw Value silently resurrects the cross-kind bug: two Equal
// values that fail ==, or occupy two map slots. Route equality through
// Value.Equal, key maps by string(Value.AppendKey(nil)), or normalize
// keys with Value.Normalize first.
func ruleValueEq(a *analyzer) {
	if strings.HasSuffix(a.pkg.Path, "internal/storage") {
		return // the type's own package implements the semantics
	}
	for _, f := range a.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				if a.isStorageValue(v.X) || a.isStorageValue(v.Y) {
					a.report("DL005", v.OpPos,
						"raw %s on storage.Value is kind-sensitive (Int(1) %s Float(1) even though they are Equal); use Value.Equal or compare AppendKey forms",
						v.Op, v.Op)
				}
			case *ast.MapType:
				if a.isStorageValue(v.Key) {
					a.report("DL005", v.Key.Pos(),
						"map keyed by raw storage.Value splits Equal values into separate slots (Int(1) vs Float(1)); key by string(Value.AppendKey(nil)) or insert Value.Normalize() keys")
				}
			case *ast.SwitchStmt:
				if v.Tag != nil && a.isStorageValue(v.Tag) {
					a.report("DL005", v.Tag.Pos(),
						"switch on raw storage.Value compares with ==, which is kind-sensitive; compare with Value.Equal instead")
				}
			}
			return true
		})
	}
}

// isStorageValue reports whether the expression's type is the named type
// storage.Value.
func (a *analyzer) isStorageValue(e ast.Expr) bool {
	t := a.typeOf(e)
	return t != nil && isNamed(t, "internal/storage", "Value")
}
