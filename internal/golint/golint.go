// Package golint implements flockalint: static analysis of the engine's
// own Go source. Where flockvet (internal/analysis) checks flock programs
// against the paper's compile-time theory — containment (§3.1), plan
// legality (§4.2), filter monotonicity (§5) — flockalint checks the Go
// code that *implements* those guarantees against the engine's operational
// invariants: bit-identical answers at every worker and shard count,
// budget gates that fire on every streaming path, fsync before any
// durable publish, and AppendKey/Equal-normalized Value semantics outside
// internal/storage.
//
// The analyzer is stdlib-only (go/parser, go/ast, go/types, go/importer)
// and mirrors flockvet's diagnostics design: every finding carries a
// stable DLxxx code, a severity, a source position, and a message, with
// JSON output and the same exit-code contract in cmd/flockalint.
// docs/DESIGN.md ("Engine invariants") catalogues the rules and the
// historical bugs motivating them.
//
// Findings are suppressed line by line with
//
//	//lint:ignore DLxxx reason
//
// either at the end of the offending line or on its own line directly
// above it. A suppression silences exactly one rule; suppressions that
// match nothing are themselves reported (DL000), so stale exemptions
// cannot linger after the code they excused is gone.
package golint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a finding. Rule findings are errors — the invariants
// they guard are correctness properties, so a clean run is required (see
// the Makefile lint-go target and the CI step). Warnings are reserved for
// meta findings such as unused suppressions; cmd/flockalint still exits
// nonzero on them so they cannot accumulate.
type Severity int

// The severities, ordered so that higher is worse.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String returns "info", "warning", or "error".
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes "info"/"warning"/"error".
func (s *Severity) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("golint: unknown severity %q", str)
	}
	return nil
}

// Finding is one analyzer result: a stable DLxxx code, a severity, the
// source position, and a human-readable message.
type Finding struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// String renders "file:line:col: severity: message [DLxxx]".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", f.File, f.Line, f.Col, f.Severity, f.Message, f.Code)
}

// Sort orders findings by file, then position, then code — a stable
// presentation order for reports and golden tests.
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
}

// Render formats findings one per line.
func Render(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// HasErrors reports whether any finding is error-severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}
