// Package dl005 is a flockalint fixture: storage.Value equality must be
// routed through Equal/AppendKey outside internal/storage.
package dl005

import (
	"bytes"

	"queryflocks/internal/storage"
)

// RawEq compares Values with ==: true positive.
func RawEq(v, w storage.Value) bool {
	return v == w // want DL005
}

// RawNeqTuple compares tuple elements with !=: true positive (the
// repeated-variable bug class).
func RawNeqTuple(t storage.Tuple, i, j int) bool {
	return t[i] != t[j] // want DL005
}

// RawKey builds a map keyed by raw Values: true positive.
func RawKey(vs []storage.Value) int {
	seen := make(map[storage.Value]struct{}) // want DL005
	for _, v := range vs {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// RawSwitch switches on a Value (== under the hood): true positive.
func RawSwitch(v, w storage.Value) int {
	switch v { // want DL005
	case w:
		return 1
	}
	return 0
}

// SemanticEq routes equality through Equal: must not fire.
func SemanticEq(v, w storage.Value) bool {
	return v.Equal(w)
}

// KeyedDistinct keys by the serialized equality class: must not fire.
func KeyedDistinct(vs []storage.Value) int {
	seen := make(map[string]struct{})
	var buf []byte
	for _, v := range vs {
		buf = v.AppendKey(buf[:0])
		seen[string(buf)] = struct{}{}
	}
	return len(seen)
}

// KeyCompare compares serialized keys: must not fire.
func KeyCompare(v, w storage.Value) bool {
	return bytes.Equal(v.AppendKey(nil), w.AppendKey(nil))
}
