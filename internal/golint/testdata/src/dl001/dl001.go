// Package dl001 is a flockalint fixture: ordered-output map iteration.
package dl001

import (
	"sort"
	"strings"
)

// Collect appends in map order without sorting: true positive.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // the append below is the finding
		out = append(out, k) // want DL001
	}
	return out
}

// Render writes to an outer builder in map order: true positive.
func Render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		b.WriteString(k) // want DL001
		_ = v
	}
	return b.String()
}

// CollectSorted sorts the gathered keys before they escape: must not fire.
func CollectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CollectHelperSorted sorts through a same-package wrapper — the
// collect-then-sort idiom behind one level of indirection: must not fire.
func CollectHelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) { sort.Strings(xs) }

// Sum is order-insensitive (commutative aggregate): must not fire.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map — order-insensitive: must not fire.
func Invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Scratch appends only to a loop-local slice: must not fire.
func Scratch(m map[string][]int, want int) int {
	hits := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		if len(local) == want {
			hits++
		}
	}
	return hits
}

// Slices ranges a slice, not a map: must not fire.
func Slices(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
