// Package dl003 is a flockalint fixture: goroutine fan-in must merge by
// worker index, not channel-arrival order.
package dl003

import "sort"

type result struct {
	worker int
	rows   []int
}

// GatherArrival appends results as they arrive — scheduling-dependent
// order: true positive.
func GatherArrival(ch chan result, n int) [][]int {
	var merged [][]int
	for r := range ch {
		merged = append(merged, r.rows) // want DL003
	}
	return merged
}

// GatherIndexed places each result in its worker's slot: must not fire.
func GatherIndexed(ch chan result, n int) [][]int {
	merged := make([][]int, n)
	seen := 0
	for r := range ch {
		merged[r.worker] = r.rows
		seen++
		if seen == n {
			break
		}
	}
	return merged
}

// GatherSorted collects in arrival order but sorts before the result
// escapes: must not fire.
func GatherSorted(ch chan result) []result {
	var rs []result
	for r := range ch {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].worker < rs[j].worker })
	return rs
}
