// Package dl004 is a flockalint fixture: fsync before durable publish.
package dl004

import (
	"os"
	"path/filepath"
)

const catalogFile = "CATALOG.json"

// PublishUnsynced renames a file into place without ever syncing it:
// true positive.
func PublishUnsynced(dir string, raw []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "state.json")) // want DL004
}

// PublishSynced syncs the temporary file before the rename: must not fire.
func PublishSynced(dir string, raw []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "state.json"))
}

// writeDurable is a helper whose body syncs.
func writeDurable(path string, raw []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// PublishViaHelper syncs through a same-package helper: must not fire.
func PublishViaHelper(dir string, raw []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	if err := writeDurable(tmp, raw); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "state.json"))
}

// WriteCatalog publishes the catalog with os.WriteFile, which cannot
// fsync: true positive.
func WriteCatalog(dir string, raw []byte) error {
	return os.WriteFile(filepath.Join(dir, catalogFile), raw, 0o644) // want DL004
}

// WriteScratch writes a non-durable temp artifact: must not fire.
func WriteScratch(dir string, raw []byte) error {
	return os.WriteFile(filepath.Join(dir, "scratch.csv"), raw, 0o644)
}
