// Package dl002 is a flockalint fixture: streaming pull loops must
// consult the Limits gate per batch. The fixture mirrors the physical
// package's operator shape with local stand-ins.
package dl002

type gate struct{}

func (g *gate) Check() error { return nil }

type ctx struct{ Gate *gate }

type operator interface {
	next(c *ctx) ([]int, bool, error)
}

// badOp pulls in a loop without ever consulting the gate: true positive.
type badOp struct{ rows []int }

func (o *badOp) next(c *ctx) ([]int, bool, error) { // want DL002
	var out []int
	for _, r := range o.rows {
		out = append(out, r)
	}
	return out, len(out) > 0, nil
}

// srcOp checks the gate before producing its batch: must not fire.
type srcOp struct{ rows []int }

func (o *srcOp) next(c *ctx) ([]int, bool, error) {
	if err := c.Gate.Check(); err != nil {
		return nil, false, err
	}
	var out []int
	for _, r := range o.rows {
		out = append(out, r)
	}
	return out, len(out) > 0, nil
}

// pipeOp delegates to its input, whose pull honors the contract: must
// not fire.
type pipeOp struct{ input operator }

func (o *pipeOp) next(c *ctx) ([]int, bool, error) {
	batch, ok, err := o.input.next(c)
	if err != nil || !ok {
		return nil, false, err
	}
	var out []int
	for _, r := range batch {
		out = append(out, r*2)
	}
	return out, true, nil
}

// barrierOp drains through a same-package helper that pulls from its
// input — the group/materialize shape: must not fire.
type barrierOp struct {
	input operator
	acc   []int
	built bool
}

func (o *barrierOp) build(c *ctx) error {
	for {
		batch, ok, err := o.input.next(c)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		o.acc = append(o.acc, batch...)
	}
}

func (o *barrierOp) next(c *ctx) ([]int, bool, error) {
	if !o.built {
		if err := o.build(c); err != nil {
			return nil, false, err
		}
		o.built = true
	}
	for range o.acc {
		break
	}
	return o.acc, false, nil
}

// unitOp emits once, loop-free — constant work per call: must not fire.
type unitOp struct{ done bool }

func (o *unitOp) next(c *ctx) ([]int, bool, error) {
	if o.done {
		return nil, false, nil
	}
	o.done = true
	return []int{1}, true, nil
}
