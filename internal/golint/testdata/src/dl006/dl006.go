// Package dl006 is a flockalint fixture: no wall clock or randomness as
// data in deterministic packages.
package dl006

import (
	"math/rand" // want DL006
	"time"
)

// Stamp stores a clock reading in returned data: true positive.
func Stamp() time.Time {
	return time.Now() // want DL006
}

type record struct{ at time.Time }

// Tag stores the clock in a field: true positive.
func Tag(r *record) {
	r.at = time.Now() // want DL006
}

// Escapes measures a duration but also lets the reading escape: true
// positive.
func Escapes(out chan<- time.Time) time.Duration {
	start := time.Now() // want DL006
	out <- start
	return time.Since(start)
}

// Draw samples randomness (the import is the finding; the call needs no
// second report).
func Draw() int { return rand.Int() }

// Measure times an operation the obs way: must not fire.
func Measure(work func()) time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// Deadline checks wall expiry with After: must not fire.
func Deadline(d time.Time) bool {
	return time.Now().After(d)
}

// Accumulate re-reads and folds durations: must not fire.
func Accumulate(work func(), n int) time.Duration {
	var total time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		work()
		total += time.Since(start)
	}
	return total
}
