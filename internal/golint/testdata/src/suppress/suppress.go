// Package suppress is a flockalint fixture for the //lint:ignore
// mechanism. The expectations live in suppress_test.go (exact code+line
// assertions), not in want markers, because the suppression comments
// themselves occupy the marker position.
package suppress

import "queryflocks/internal/storage"

// EOLSuppressed carries an end-of-line suppression: silenced.
func EOLSuppressed(v, w storage.Value) bool {
	return v == w //lint:ignore DL005 fixture: raw identity is the point of this helper
}

// AboveSuppressed carries the suppression on the line above: silenced.
func AboveSuppressed(v, w storage.Value) bool {
	//lint:ignore DL005 fixture: raw identity is the point of this helper
	return v != w
}

// WrongCode suppresses a different rule, so the DL005 finding survives
// and the suppression is reported unused.
func WrongCode(v, w storage.Value) bool {
	//lint:ignore DL001 fixture: wrong code on purpose
	return v == w
}

// OneLineOnly suppresses its own line; the violation two lines down is
// out of range and survives.
func OneLineOnly(v, w storage.Value) bool {
	//lint:ignore DL005 fixture: covers only the next line
	_ = 0
	return v == w
}

// Unused suppresses a line with no finding at all.
func Unused(v, w storage.Value) bool {
	//lint:ignore DL005 fixture: nothing to silence here
	return v.Equal(w)
}

// Malformed lacks a reason.
func Malformed(v, w storage.Value) bool {
	//lint:ignore DL005
	return v == w
}
