package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyze runs every rule over one loaded package, applies the package's
// suppressions, and returns the surviving findings sorted.
func Analyze(p *Package, cfg Config) []Finding {
	a := &analyzer{pkg: p, cfg: cfg}
	for _, rule := range rules {
		rule(a)
	}
	fs := applySuppressions(p, a.findings)
	Sort(fs)
	return fs
}

// rules is the registry, run in order. Each rule is independent.
var rules = []func(*analyzer){
	ruleMapOrder,   // DL001: ordered-output map iteration
	ruleGate,       // DL002: streaming pull loops consult the Limits gate
	ruleMergeOrder, // DL003: fan-in merges in arrival order
	ruleFsync,      // DL004: fsync before durable publish
	ruleValueEq,    // DL005: raw Value equality outside internal/storage
	ruleClock,      // DL006: wall clock / rand as data in deterministic code
}

// analyzer accumulates findings across the rules of one package.
type analyzer struct {
	pkg      *Package
	cfg      Config
	findings []Finding

	// funcBodies maps same-package function/method objects to their
	// declarations, lazily built for the call-closure helper.
	funcBodies map[types.Object]*ast.FuncDecl
}

func (a *analyzer) report(code string, pos token.Pos, format string, args ...any) {
	position := a.pkg.Fset.Position(pos)
	a.findings = append(a.findings, Finding{
		Code:     code,
		Severity: SevError,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// typeOf returns the type of an expression, or nil when type-checking
// did not resolve it.
func (a *analyzer) typeOf(e ast.Expr) types.Type {
	if tv, ok := a.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objOf resolves an identifier to its object (use or def).
func (a *analyzer) objOf(id *ast.Ident) types.Object {
	if o := a.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return a.pkg.Info.Defs[id]
}

// pkgQualifier reports whether an expression is a reference to the named
// imported package (e.g. isPkg(x, "time") for the time in time.Now).
func (a *analyzer) isPkg(e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := a.objOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// calleeName returns the bare name a call invokes: the selector name for
// method/package calls, the identifier for direct calls, "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// funcDecls lazily indexes the package's function and method
// declarations by their types.Object, for closure walks.
func (a *analyzer) funcDecls() map[types.Object]*ast.FuncDecl {
	if a.funcBodies != nil {
		return a.funcBodies
	}
	a.funcBodies = make(map[types.Object]*ast.FuncDecl)
	for _, f := range a.pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := a.pkg.Info.Defs[fd.Name]; obj != nil {
					a.funcBodies[obj] = fd
				}
			}
		}
	}
	return a.funcBodies
}

// resolveCallee maps a call to the same-package FuncDecl it invokes, or
// nil for interface, imported, or unresolved callees.
func (a *analyzer) resolveCallee(call *ast.CallExpr) *ast.FuncDecl {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = a.objOf(fun)
	case *ast.SelectorExpr:
		if sel, ok := a.pkg.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = a.objOf(fun.Sel)
		}
	}
	if obj == nil {
		return nil
	}
	return a.funcDecls()[obj]
}

// callClosure collects the bare names of every call reachable from n,
// following same-package callees transitively (interface calls contribute
// their method name but are not followed — the per-batch contract is the
// callee's own to honor).
func (a *analyzer) callClosure(n ast.Node, names map[string]bool, seen map[*ast.FuncDecl]bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		call, ok := child.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := calleeName(call); name != "" {
			names[name] = true
		}
		if fd := a.resolveCallee(call); fd != nil && fd.Body != nil && !seen[fd] {
			seen[fd] = true
			a.callClosure(fd.Body, names, seen)
		}
		return true
	})
}

// containsLoop reports whether the node contains any for/range statement.
func containsLoop(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(child ast.Node) bool {
		switch child.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// withParents walks the tree calling fn with each node's ancestor stack
// (outermost first, not including n itself).
func withParents(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		stack = append(stack, n)
		if !descend {
			// Inspect will still send the nil pop for this node.
			return false
		}
		return true
	})
}

// enclosingFuncs returns the package's top-level function declarations
// with bodies.
func (a *analyzer) enclosingFuncs() []*ast.FuncDecl {
	var fds []*ast.FuncDecl
	for _, f := range a.pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fds = append(fds, fd)
			}
		}
	}
	return fds
}

// declaredWithin reports whether an object's declaration lies inside the
// given source span.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && lo <= obj.Pos() && obj.Pos() < hi
}

// exprString renders a short expression for messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	}
	return "expr"
}

// isNamed reports whether t (or the pointee of a pointer) is the named
// type pkgSuffix.name, matching the package by import-path suffix.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}
