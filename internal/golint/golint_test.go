package golint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader type-checks all fixtures through one importer so
// dependency packages (storage, os, time) are checked once.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
)

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loaderOnce.Do(func() { sharedLoader = NewLoader() })
	pkg, err := sharedLoader.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrs {
		t.Errorf("fixture %s does not type-check: %v", name, terr)
	}
	return pkg
}

// fixtureConfig scopes the package-sensitive rules onto the fixture
// package names.
func fixtureConfig() Config {
	return Config{
		DeterministicPkgs: []string{"dl001", "dl003", "dl006"},
		StreamingPkgs:     []string{"dl002"},
		DurablePkgs:       []string{"dl004"},
	}
}

var wantRE = regexp.MustCompile(`//\s*want\s+((?:DL\d{3}\s*)+)$`)

// wantMarkers parses "// want DLxxx [DLxxx ...]" expectations from a
// fixture file, keyed by "line:CODE" with a count.
func wantMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := make(map[string]int)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, code := range strings.Fields(m[1]) {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), line, code)]++
			}
		}
		f.Close()
	}
	return want
}

// checkFixture diffs analyzer findings against the fixture's markers.
func checkFixture(t *testing.T, name string) []Finding {
	t.Helper()
	pkg := loadFixture(t, name)
	findings := Analyze(pkg, fixtureConfig())

	got := make(map[string]int)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.File), f.Line, f.Code)]++
	}
	want := wantMarkers(t, pkg.Dir)

	keys := make(map[string]bool)
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if got[k] != want[k] {
			t.Errorf("fixture %s: %s: got %d finding(s), want %d\nall findings:\n%s",
				name, k, got[k], want[k], Render(findings))
		}
	}
	return findings
}

func TestDL001MapOrder(t *testing.T)       { checkFixture(t, "dl001") }
func TestDL002GateCoverage(t *testing.T)   { checkFixture(t, "dl002") }
func TestDL003MergeOrder(t *testing.T)     { checkFixture(t, "dl003") }
func TestDL004FsyncPublish(t *testing.T)   { checkFixture(t, "dl004") }
func TestDL005RawValueEq(t *testing.T)     { checkFixture(t, "dl005") }
func TestDL006ClockAndRand(t *testing.T)   { checkFixture(t, "dl006") }

// TestFindingsDeterministic reruns a fixture and requires identical
// output — the analyzer itself must honor the invariant it enforces.
func TestFindingsDeterministic(t *testing.T) {
	pkg := loadFixture(t, "dl001")
	first := Render(Analyze(pkg, fixtureConfig()))
	for i := 0; i < 5; i++ {
		if again := Render(Analyze(pkg, fixtureConfig())); again != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, first, again)
		}
	}
}
