package golint

import (
	"go/ast"
	"strings"
)

// DL002 — budget-gate coverage. Every streaming operator's pull method
// (`next`) in the physical package must observe the evaluation's Limits
// gate once per batch: either by consulting the gate itself
// (Gate.Check/CheckOutput) or by pulling from an upstream operator
// (a call to a `next` method), whose own pull honors the contract. A
// pull loop that does neither can emit unbounded work between
// checkpoints, so cancellation, wall deadlines, and tuple budgets
// silently stop firing on that path. Loop-free emitters (the unit
// relation) are exempt: they do constant work per call.
//
// The rule follows same-package helper calls transitively, so a `next`
// that drains its input inside a build/materialize helper still counts.
func ruleGate(a *analyzer) {
	if !matchPkg(a.cfg.StreamingPkgs, a.pkg.Path) {
		return
	}
	for _, fd := range a.enclosingFuncs() {
		if fd.Name.Name != "next" || fd.Recv == nil {
			continue
		}
		if !containsLoop(fd.Body) {
			continue
		}
		names := make(map[string]bool)
		a.callClosure(fd.Body, names, map[*ast.FuncDecl]bool{})
		if names["Check"] || names["CheckOutput"] || names["next"] {
			continue
		}
		recv := "operator"
		if len(fd.Recv.List) > 0 {
			recv = exprString(fd.Recv.List[0].Type)
		}
		a.report("DL002", fd.Pos(),
			"pull loop in (%s).next never consults the Limits gate: call ctx.Gate.Check() per batch or pull from an upstream operator, or budgets and cancellation cannot fire here", recv)
	}
}

// DL004 — fsync before publish. The durable packages make new state
// visible by renaming a file into place or by writing a catalog; both are
// publishes: after them, readers (and post-crash recovery) may see the
// new state. A publish whose data was never synced can survive while the
// bytes it points to are lost — the PR 9 delta bug, where a crash after
// the version bump could drop a freshly created delta file whose
// directory entry was never fsynced.
//
// Two checks:
//
//   - os.Rename must be preceded, in the same function, by a call that
//     syncs (Sync, fsyncDir, or a same-package helper whose body syncs).
//   - os.WriteFile must not write catalog/version/prepared state at all:
//     it cannot fsync, so the publish is never durable. Use a
//     create-write-Sync-close helper instead.
func ruleFsync(a *analyzer) {
	if !matchPkg(a.cfg.DurablePkgs, a.pkg.Path) {
		return
	}
	for _, fd := range a.enclosingFuncs() {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !a.isPkg(sel.X, "os") {
				return true
			}
			switch sel.Sel.Name {
			case "Rename":
				if !a.syncedBefore(fd, call) {
					a.report("DL004", call.Pos(),
						"os.Rename publishes a file that was never synced in this function: Sync the file (and the directory for fresh files) before the rename, or a crash can lose the published bytes")
				}
			case "WriteFile":
				if len(call.Args) > 0 && mentionsDurableState(call.Args[0]) {
					a.report("DL004", call.Pos(),
						"os.WriteFile cannot fsync, so this catalog/version publish is not durable: write, Sync, and close the file explicitly")
				}
			}
			return true
		})
	}
}

// syncedBefore reports whether any call lexically before pos in the
// function syncs: by name (Sync, *Sync, anything containing fsync) or by
// being a same-package helper whose call closure contains such a call.
func (a *analyzer) syncedBefore(fd *ast.FuncDecl, publish *ast.CallExpr) bool {
	synced := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if synced {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= publish.Pos() || call == publish {
			return true
		}
		if isSyncName(calleeName(call)) {
			synced = true
			return false
		}
		if callee := a.resolveCallee(call); callee != nil && callee.Body != nil {
			names := make(map[string]bool)
			a.callClosure(callee.Body, names, map[*ast.FuncDecl]bool{callee: true})
			for name := range names {
				if isSyncName(name) {
					synced = true
					return false
				}
			}
		}
		return true
	})
	return synced
}

func isSyncName(name string) bool {
	return name == "Sync" || strings.HasSuffix(name, "Sync") ||
		strings.Contains(strings.ToLower(name), "fsync")
}

// mentionsDurableState reports whether a path expression references the
// catalog, version, or prepared-state files by identifier or literal.
func mentionsDurableState(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		var text string
		switch v := n.(type) {
		case *ast.Ident:
			text = v.Name
		case *ast.BasicLit:
			text = v.Value
		default:
			return true
		}
		text = strings.ToLower(text)
		if strings.Contains(text, "catalog") || strings.Contains(text, "version") || strings.Contains(text, "prepared") {
			found = true
		}
		return !found
	})
	return found
}
