// Package sqlgen renders query flocks and their FILTER-step plans as SQL,
// the direction §1.3 and §2.1 sketch ("each of the advantages mentioned
// above can be translated to SQL terms"). The output targets a generic
// SQL dialect: a flock becomes a grouped HAVING query over a derived
// extended-answer table (Fig. 1's shape, generalized to unions, negation
// and arithmetic), and a plan becomes a WITH chain whose final SELECT
// joins the pre-filter CTEs — the rewrite that produced the paper's 20×
// speedup when applied by hand.
//
// The translation is illustrative: it is rendered and tested as text, and
// executed semantics live in internal/eval.
package sqlgen

import (
	"fmt"
	"strings"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// FlockSQL renders the flock as a single SQL statement. Intermediate
// predicates (views, §2.2) become a leading WITH chain.
func FlockSQL(f *core.Flock) (string, error) {
	viewCols := make(map[string][]string, len(f.Views))
	ctes, err := viewCTEs(f, viewCols)
	if err != nil {
		return "", err
	}
	inner, err := extendedSelect(f.Query, f.Params, viewCols)
	if err != nil {
		return "", err
	}
	body := groupedSelect(f, inner, f.Params)
	if len(ctes) == 0 {
		return body, nil
	}
	return "WITH " + strings.Join(ctes, ",\n") + "\n" + body, nil
}

// viewCTEs renders each view predicate as a CTE and records its column
// names. Union views (several rules per predicate) become UNION bodies.
func viewCTEs(f *core.Flock, viewCols map[string][]string) ([]string, error) {
	var order []string
	bodies := make(map[string][]string)
	for _, v := range f.Views {
		cols, seen := viewCols[v.Head.Pred]
		if !seen {
			cols = make([]string, len(v.Head.Args))
			for i := range v.Head.Args {
				cols[i] = fmt.Sprintf("c%d", i+1)
			}
			viewCols[v.Head.Pred] = cols
			order = append(order, v.Head.Pred)
		}
		// A view body is the rule's head projection (no parameters).
		sel, err := ruleSelect(v, nil, viewCols)
		if err != nil {
			return nil, fmt.Errorf("sqlgen: view %s: %w", v.Head, err)
		}
		bodies[v.Head.Pred] = append(bodies[v.Head.Pred], sel)
	}
	var ctes []string
	for _, pred := range order {
		cols := viewCols[pred]
		renamed := make([]string, len(cols))
		for i, c := range cols {
			renamed[i] = fmt.Sprintf("h%d AS %s", i+1, c)
		}
		body := strings.Join(bodies[pred], "\nUNION\n")
		ctes = append(ctes, fmt.Sprintf("%s AS (\n  SELECT %s FROM (\n%s\n  ) v\n)",
			pred, strings.Join(renamed, ", "), indent(body, "  ")))
	}
	return ctes, nil
}

// PlanSQL renders a FILTER-step plan as a WITH chain ending in the final
// step's grouped SELECT. View CTEs, if the flock has views, come first.
func PlanSQL(p *core.Plan) (string, error) {
	stepCols := make(map[string][]string, len(p.Steps))
	ctes, err := viewCTEs(p.Flock, stepCols)
	if err != nil {
		return "", err
	}
	for i, step := range p.Steps {
		inner, err := extendedSelect(step.Query, step.Params, stepCols)
		if err != nil {
			return "", fmt.Errorf("sqlgen: step %q: %w", step.Name, err)
		}
		body := groupedSelectFor(p.Flock, inner, step.Params)
		cols := make([]string, len(step.Params))
		for j := range step.Params {
			cols[j] = fmt.Sprintf("p%d", j+1)
		}
		stepCols[step.Name] = cols
		if i == len(p.Steps)-1 {
			var out strings.Builder
			if len(ctes) > 0 {
				out.WriteString("WITH ")
				out.WriteString(strings.Join(ctes, ",\n"))
				out.WriteString("\n")
			}
			out.WriteString(body)
			return out.String(), nil
		}
		ctes = append(ctes, fmt.Sprintf("%s AS (\n%s\n)", step.Name, indent(body, "  ")))
	}
	return "", fmt.Errorf("sqlgen: plan has no steps")
}

// extendedSelect renders the union's extended answer (params then head
// columns) as a SELECT or UNION of SELECTs. stepCols maps plan-step
// relation names to their column names (nil outside plans).
func extendedSelect(u datalog.Union, params []datalog.Param, stepCols map[string][]string) (string, error) {
	var parts []string
	for _, r := range u {
		s, err := ruleSelect(r, params, stepCols)
		if err != nil {
			return "", err
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "\nUNION\n"), nil
}

// ruleSelect renders one rule's extended answer as SELECT DISTINCT.
func ruleSelect(r *datalog.Rule, params []datalog.Param, stepCols map[string][]string) (string, error) {
	exprs := make(map[string]string) // term column -> SQL expression
	var where []string

	colName := func(pred string, i int) string {
		if cols, ok := stepCols[pred]; ok && i < len(cols) {
			return cols[i]
		}
		return fmt.Sprintf("c%d", i+1)
	}

	// Positive atoms become FROM entries with aliases.
	var from []string
	for ai, a := range r.PositiveAtoms() {
		alias := fmt.Sprintf("t%d", ai)
		from = append(from, fmt.Sprintf("%s %s", a.Pred, alias))
		for i, t := range a.Args {
			ref := fmt.Sprintf("%s.%s", alias, colName(a.Pred, i))
			switch x := t.(type) {
			case datalog.Const:
				where = append(where, fmt.Sprintf("%s = %s", ref, sqlLiteral(x)))
			default:
				col, _ := termColumn(t)
				if prev, bound := exprs[col]; bound {
					where = append(where, fmt.Sprintf("%s = %s", prev, ref))
				} else {
					exprs[col] = ref
				}
			}
		}
	}
	if len(from) == 0 {
		return "", fmt.Errorf("sqlgen: rule %s has no positive subgoals", r.Head)
	}

	termExpr := func(t datalog.Term) (string, error) {
		if c, isConst := t.(datalog.Const); isConst {
			return sqlLiteral(c), nil
		}
		col, _ := termColumn(t)
		e, ok := exprs[col]
		if !ok {
			return "", fmt.Errorf("sqlgen: term %s is not bound by a positive subgoal", t)
		}
		return e, nil
	}

	// Comparisons become WHERE predicates.
	for _, c := range r.Comparisons() {
		l, err := termExpr(c.Left)
		if err != nil {
			return "", err
		}
		rgt, err := termExpr(c.Right)
		if err != nil {
			return "", err
		}
		op := c.Op.String()
		if c.Op == datalog.Ne {
			op = "<>"
		}
		where = append(where, fmt.Sprintf("%s %s %s", l, op, rgt))
	}

	// Negated atoms become NOT EXISTS subqueries.
	for _, a := range r.NegatedAtoms() {
		var conds []string
		for i, t := range a.Args {
			e, err := termExpr(t)
			if err != nil {
				return "", err
			}
			conds = append(conds, fmt.Sprintf("n.%s = %s", colName(a.Pred, i), e))
		}
		where = append(where, fmt.Sprintf("NOT EXISTS (SELECT 1 FROM %s n WHERE %s)",
			a.Pred, strings.Join(conds, " AND ")))
	}

	// SELECT list: params as p1..pk, head args as h1..hm.
	var sel []string
	for i, p := range params {
		e, err := termExpr(p)
		if err != nil {
			return "", err
		}
		sel = append(sel, fmt.Sprintf("%s AS p%d", e, i+1))
	}
	for i, t := range r.Head.Args {
		e, err := termExpr(t)
		if err != nil {
			return "", err
		}
		sel = append(sel, fmt.Sprintf("%s AS h%d", e, i+1))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT DISTINCT %s\nFROM %s", strings.Join(sel, ", "), strings.Join(from, ", "))
	if len(where) > 0 {
		fmt.Fprintf(&b, "\nWHERE %s", strings.Join(where, "\n  AND "))
	}
	return b.String(), nil
}

// groupedSelect wraps the extended answer in the GROUP BY / HAVING of the
// flock's filter, projecting the flock's parameters.
func groupedSelect(f *core.Flock, inner string, params []datalog.Param) string {
	return groupedSelectFor(f, inner, params)
}

func groupedSelectFor(f *core.Flock, inner string, params []datalog.Param) string {
	var cols []string
	for i := range params {
		cols = append(cols, fmt.Sprintf("p%d", i+1))
	}
	group := strings.Join(cols, ", ")
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s\nFROM (\n%s\n) answer\nGROUP BY %s\nHAVING %s",
		group, indent(inner, "  "), group, havingClause(f))
	return b.String()
}

// havingClause renders the filter condition over the extended answer's
// head columns.
func havingClause(f *core.Flock) string {
	spec := f.Filter.Spec()
	var target string
	switch {
	case spec.Agg == datalog.AggCount && f.Filter.HeadPos() < 0 && len(f.Query[0].Head.Args) == 1:
		target = "COUNT(DISTINCT h1)"
	case spec.Agg == datalog.AggCount && f.Filter.HeadPos() < 0:
		// Whole-tuple distinct count; rows are already DISTINCT.
		target = "COUNT(*)"
	default:
		pos := f.Filter.HeadPos()
		if pos < 0 {
			pos = 0
		}
		col := fmt.Sprintf("h%d", pos+1)
		if spec.Agg == datalog.AggCount {
			target = fmt.Sprintf("COUNT(DISTINCT %s)", col)
		} else {
			target = fmt.Sprintf("%s(%s)", spec.Agg, col)
		}
	}
	return fmt.Sprintf("%s %s %s", target, spec.Op, spec.Threshold.Literal())
}

func sqlLiteral(c datalog.Const) string {
	v := c.Val
	if v.Kind() == storage.KindString {
		return "'" + strings.ReplaceAll(v.String(), "'", "''") + "'"
	}
	return v.String()
}

func termColumn(t datalog.Term) (string, bool) {
	switch x := t.(type) {
	case datalog.Var:
		return string(x), true
	case datalog.Param:
		return "$" + string(x), true
	default:
		return "", false
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
