package sqlgen

import (
	"strings"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
)

func TestFlockSQLFig1Shape(t *testing.T) {
	// The Fig. 2 flock rendered as SQL must have the Fig. 1 ingredients:
	// a self-join of baskets, the BID equality, the item ordering, a GROUP
	// BY of the item pair and a COUNT HAVING clause.
	f := paper.MarketBasket(20)
	sql, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FROM baskets t0, baskets t1",
		"t0.c1 = t1.c1", // shared basket ID
		"t0.c2 < t1.c2", // $1 < $2
		"GROUP BY p1, p2",
		"COUNT(DISTINCT h1) >= 20",
		"SELECT DISTINCT",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestFlockSQLNegation(t *testing.T) {
	f := paper.Medical(20)
	sql, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"NOT EXISTS (SELECT 1 FROM causes n WHERE",
		"FROM exhibits t0, treatments t1, diagnoses t2",
		"HAVING COUNT(DISTINCT h1) >= 20",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestFlockSQLUnion(t *testing.T) {
	f := paper.WebWords(20)
	sql, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(sql, "UNION") != 2 {
		t.Errorf("want 2 UNIONs:\n%s", sql)
	}
	if !strings.Contains(sql, "COUNT(DISTINCT h1)") {
		t.Errorf("union COUNT(*) over unary heads should count h1:\n%s", sql)
	}
}

func TestFlockSQLWeighted(t *testing.T) {
	f := paper.WeightedBasket(20)
	sql, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "SUM(h2) >= 20") {
		t.Errorf("want SUM over the weight column:\n%s", sql)
	}
}

func TestFlockSQLConstants(t *testing.T) {
	f := core.MustParse(`
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,beer) AND weight(B,3)
FILTER:
COUNT(answer.B) >= 20`)
	sql, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "= 'beer'") {
		t.Errorf("string constant not quoted:\n%s", sql)
	}
	if !strings.Contains(sql, "= 3") {
		t.Errorf("int constant missing:\n%s", sql)
	}
}

func TestPlanSQLWithChain(t *testing.T) {
	f := paper.Medical(20)
	okS, _ := core.MinimalSubqueryForParams(f.Query[0], []datalog.Param{"s"})
	okM, _ := core.MinimalSubqueryForParams(f.Query[0], []datalog.Param{"m"})
	stepS := core.FilterStep{Name: "okS", Params: []datalog.Param{"s"}, Query: datalog.Union{okS.Rule}}
	stepM := core.FilterStep{Name: "okM", Params: []datalog.Param{"m"}, Query: datalog.Union{okM.Rule}}
	plan, err := core.NewPlan(f, []core.FilterStep{stepS, stepM, core.FinalStep(f, "ok", stepS, stepM)})
	if err != nil {
		t.Fatal(err)
	}
	sql, err := PlanSQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"WITH okS AS (",
		"okM AS (",
		"FROM okS t0, okM t1", // step refs joined in the final query
		"HAVING COUNT(DISTINCT h1) >= 20",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("plan SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestFlockSQLWithViews(t *testing.T) {
	f := core.MustParse(`
VIEWS:
allCaused(P,S) :- diagnoses(P,D) AND causes(D,S)
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT allCaused(P,$s)
FILTER:
COUNT(answer.P) >= 20`)
	sql, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"WITH allCaused AS (",
		"FROM diagnoses t0, causes t1",
		"NOT EXISTS (SELECT 1 FROM allCaused n",
		"HAVING COUNT(DISTINCT h1) >= 20",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("view SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestFlockSQLUnionView(t *testing.T) {
	f := core.MustParse(`
VIEWS:
senior(P) :- people(P,S) AND S > 65
senior(P) :- vip(P)
QUERY:
answer(P) :- buys(P,$i) AND senior(P)
FILTER:
COUNT(answer.P) >= 2`)
	sql, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(sql, "UNION") != 1 {
		t.Errorf("union view should produce one UNION:\n%s", sql)
	}
	if !strings.Contains(sql, "senior AS (") {
		t.Errorf("missing senior CTE:\n%s", sql)
	}
}

func TestPlanSQLSymmetricRefs(t *testing.T) {
	// The shared item filter referenced for both parameters renders as two
	// FROM entries over the same CTE.
	f := paper.MarketBasket(20)
	sub, ok := core.MinimalSubqueryForParams(f.Query[0], []datalog.Param{"1"})
	if !ok {
		t.Fatal("no $1 subquery")
	}
	step := core.FilterStep{Name: "okitem", Params: []datalog.Param{"1"}, Query: datalog.Union{sub.Rule}}
	final := core.FinalStepRefs(f, "ok",
		core.StepRef{Step: step, Args: []datalog.Param{"1"}},
		core.StepRef{Step: step, Args: []datalog.Param{"2"}},
	)
	plan, err := core.NewPlan(f, []core.FilterStep{step, final})
	if err != nil {
		t.Fatal(err)
	}
	sql, err := PlanSQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM okitem t0, okitem t1") {
		t.Errorf("symmetric refs should join the CTE twice:\n%s", sql)
	}
}

func TestPlanSQLTrivial(t *testing.T) {
	f := paper.MarketBasket(20)
	plan := core.TrivialPlan(f)
	sql, err := PlanSQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "WITH") {
		t.Errorf("trivial plan should have no CTEs:\n%s", sql)
	}
	direct, err := FlockSQL(f)
	if err != nil {
		t.Fatal(err)
	}
	if sql != direct {
		t.Errorf("trivial plan SQL should equal flock SQL\nplan:\n%s\nflock:\n%s", sql, direct)
	}
}
