package eval

import (
	"fmt"
	"sync"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// Options configures rule evaluation.
type Options struct {
	// Order selects the join-order strategy; zero value is OrderGreedy.
	Order OrderStrategy
	// FixedOrder, when non-nil, overrides Order with an explicit sequence
	// of positive-atom indices.
	FixedOrder []int
	// Trace, when non-nil, records every operator application.
	Trace *Trace
	// Parallel evaluates the branches of a union concurrently. Base
	// relations are shared read-only (lazy index builds are locked);
	// results merge deterministically.
	Parallel bool
	// Workers is the worker count for the partitioned hash-join and
	// anti-join operators inside each rule: 0 (the default) means one
	// worker per CPU, 1 forces the sequential paths, larger values are
	// used as given. Results are identical for every worker count.
	Workers int
}

func (o *Options) orDefault() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// EvalRule evaluates a single safe rule against db and projects the result
// onto the given output terms (deduplicated; set semantics). A nil out
// projects onto the rule's head arguments.
func EvalRule(db *storage.Database, r *datalog.Rule, out []datalog.Term, opts *Options) (*storage.Relation, error) {
	o := opts.orDefault()
	if out == nil {
		out = r.Head.Args
	}
	ex, err := NewExecutor(db, r, o.Trace)
	if err != nil {
		return nil, err
	}
	ex.SetWorkers(o.Workers)
	order := o.FixedOrder
	if order == nil {
		order, err = JoinOrder(db, r, o.Order)
		if err != nil {
			return nil, err
		}
	}
	if len(order) != len(r.PositiveAtoms()) {
		return nil, fmt.Errorf("eval: join order covers %d of %d atoms", len(order), len(r.PositiveAtoms()))
	}
	for _, i := range order {
		if ex.Joined(i) { // absorbed into an earlier scan as a semi-join
			continue
		}
		if err := ex.JoinNext(i); err != nil {
			return nil, err
		}
	}
	return ex.Finish(out)
}

// EvalUnion evaluates a union of rules and unions the projected results.
// outFor returns the output terms for each rule; the projections must have
// equal arity. Set semantics: duplicates across rules collapse.
func EvalUnion(db *storage.Database, u datalog.Union, outFor func(*datalog.Rule) []datalog.Term, opts *Options) (*storage.Relation, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	o := opts.orDefault()
	parts := make([]*storage.Relation, len(u))
	if o.Parallel && len(u) > 1 {
		var wg sync.WaitGroup
		errs := make([]error, len(u))
		for i, r := range u {
			wg.Add(1)
			go func(i int, r *datalog.Rule) {
				defer wg.Done()
				parts[i], errs[i] = EvalRule(db, r, outFor(r), opts)
			}(i, r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i, r := range u {
			part, err := EvalRule(db, r, outFor(r), opts)
			if err != nil {
				return nil, err
			}
			parts[i] = part
		}
	}

	result := parts[0]
	for _, part := range parts[1:] {
		if result.Arity() != part.Arity() {
			return nil, fmt.Errorf("eval: union branches project %d vs %d columns", result.Arity(), part.Arity())
		}
		for _, t := range part.Tuples() {
			result.Insert(t)
		}
	}
	return result, nil
}

// EvalGround evaluates a fully instantiated rule (no parameters) and
// reports the tuples of its head predicate — the per-assignment "result of
// the query" of the flock semantics (§2).
func EvalGround(db *storage.Database, r *datalog.Rule, opts *Options) (*storage.Relation, error) {
	if ps := r.Params(); len(ps) > 0 {
		return nil, fmt.Errorf("eval: rule still has parameters %v", ps)
	}
	return EvalRule(db, r, nil, opts)
}
