package eval

import (
	"context"
	"fmt"
	"sync"

	"queryflocks/internal/datalog"
	"queryflocks/internal/physical"
	"queryflocks/internal/storage"
)

// Limits bounds one evaluation (wall clock, live intermediate tuples,
// answer rows); the zero value is unlimited. See physical.Limits.
type Limits = physical.Limits

// Gate is the per-query cancellation and budget checkpoint shared by
// every step, rule, and operator of one evaluation. See physical.Gate.
type Gate = physical.Gate

// NewGate resolves a context plus limits into a checkpoint, starting the
// wall clock; nil context with zero limits yields a nil (free) gate.
func NewGate(ctx context.Context, l Limits) *Gate { return physical.NewGate(ctx, l) }

// Typed abort errors, re-exported so callers need not import the
// physical layer: errors.Is(err, ErrCanceled) holds when a context was
// canceled or the wall limit expired, errors.Is(err, ErrBudgetExceeded)
// when a resource budget was hit.
var (
	ErrCanceled       = physical.ErrCanceled
	ErrBudgetExceeded = physical.ErrBudgetExceeded
)

// ExecMode selects how compiled queries execute.
type ExecMode int

const (
	// ExecStream (the default) compiles rules to internal/physical plans
	// and streams columnar batches of interned value IDs through the
	// operator pipeline; intermediates materialize only at pipeline
	// breakers, and boxed Values appear only at sinks and inside
	// comparison/aggregate arithmetic.
	ExecStream ExecMode = iota
	// ExecMaterialize runs the legacy relation-at-a-time executor, which
	// materializes every intermediate binding relation. Kept as the
	// bit-identical oracle baseline and for peak-memory comparisons.
	ExecMaterialize
	// ExecStreamRows streams boxed tuple rows through the same physical
	// plans — the pre-interning pipeline. Kept as the columnar path's
	// second bit-identical differential oracle.
	ExecStreamRows
)

// String names the mode ("stream" / "materialize" / "stream-rows").
func (m ExecMode) String() string {
	switch m {
	case ExecMaterialize:
		return "materialize"
	case ExecStreamRows:
		return "stream-rows"
	default:
		return "stream"
	}
}

// Streaming reports whether the mode runs compiled physical plans (the
// columnar default or the boxed row oracle) rather than the legacy
// materializing executor.
func (m ExecMode) Streaming() bool { return m == ExecStream || m == ExecStreamRows }

// Options configures rule evaluation.
type Options struct {
	// Order selects the join-order strategy; zero value is OrderGreedy.
	Order OrderStrategy
	// FixedOrder, when non-nil, overrides Order with an explicit sequence
	// of positive-atom indices.
	FixedOrder []int
	// Trace, when non-nil, records every operator application.
	Trace *Trace
	// Parallel evaluates the branches of a union concurrently. Base
	// relations are shared read-only (lazy index builds are locked);
	// results merge deterministically. Only the materializing mode
	// branches concurrently; the streaming executor interleaves branches
	// in one pipeline (its joins still parallelize per batch).
	Parallel bool
	// Workers is the worker count for the partitioned hash-join and
	// anti-join operators inside each rule: 0 (the default) means one
	// worker per CPU, 1 forces the sequential paths, larger values are
	// used as given. Results are identical for every worker count.
	Workers int
	// Exec selects the streaming physical-plan executor (default) or the
	// legacy materializing executor. Answers are identical.
	Exec ExecMode
	// Ctx, when non-nil, cancels the evaluation cooperatively: both
	// executors observe it at batch/relation boundaries and abort with
	// ErrCanceled.
	Ctx context.Context
	// Limits bounds the evaluation's wall clock, live intermediate
	// tuples, and answer rows; violations abort with ErrCanceled (wall)
	// or ErrBudgetExceeded. The zero value is unlimited, and unhit
	// limits never change answers.
	Limits Limits
	// Gate, when non-nil, is a pre-resolved cancellation checkpoint
	// shared across a multi-part evaluation (all steps of a plan share
	// one wall clock). When nil, one is derived from Ctx and Limits per
	// top-level call.
	Gate *physical.Gate
}

func (o *Options) orDefault() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// gate returns the options' checkpoint, deriving one from Ctx and
// Limits when none was pre-resolved. May return nil (unlimited).
func (o *Options) gate() *physical.Gate {
	if o == nil {
		return nil
	}
	if o.Gate != nil {
		return o.Gate
	}
	return physical.NewGate(o.Ctx, o.Limits)
}

// withGate returns a copy of the options with the checkpoint resolved,
// so nested calls share one wall clock and budget.
func (o Options) withGate() Options {
	o.Gate = (&o).gate()
	return o
}

// EvalRule evaluates a single safe rule against db and projects the result
// onto the given output terms (deduplicated; set semantics). A nil out
// projects onto the rule's head arguments.
func EvalRule(db *storage.Database, r *datalog.Rule, out []datalog.Term, opts *Options) (*storage.Relation, error) {
	o := opts.orDefault().withGate()
	if out == nil {
		out = r.Head.Args
	}
	if o.Exec == ExecMaterialize {
		return evalRuleMaterialized(db, r, out, &o)
	}
	order, err := ResolveOrder(db, r, &o)
	if err != nil {
		return nil, err
	}
	node, err := physical.CompileRule(db, r, physical.RuleOpts{Order: order, Out: out, Dedup: true})
	if err != nil {
		return nil, err
	}
	plan := physical.NewPlan(physical.NewMaterialize("answer", node, nil, "", nil))
	return RunPlan(db, plan, &o)
}

// ResolveOrder returns the join order the options imply for r: the
// FixedOrder when set (it must cover every positive atom), the Order
// strategy's choice otherwise. A nil opts uses the defaults.
func ResolveOrder(db *storage.Database, r *datalog.Rule, opts *Options) ([]int, error) {
	o := opts.orDefault()
	order := o.FixedOrder
	if order == nil {
		var err error
		order, err = JoinOrder(db, r, o.Order)
		if err != nil {
			return nil, err
		}
	}
	if len(order) != len(r.PositiveAtoms()) {
		return nil, fmt.Errorf("eval: join order covers %d of %d atoms", len(order), len(r.PositiveAtoms()))
	}
	return order, nil
}

// RunPlan executes a compiled physical plan against db under the
// options' worker knob, recording operator events into the trace.
// A nil opts uses the defaults.
func RunPlan(db *storage.Database, plan *physical.Plan, opts *Options) (*storage.Relation, error) {
	o := opts.orDefault()
	ctx := &physical.Ctx{DB: db, Workers: o.Workers, Col: o.Trace.Collector(), Gate: o.gate()}
	if o.Exec == ExecStream && db.Resident() {
		// The columnar default executes over interned IDs; ExecStreamRows
		// leaves Dict nil and takes the boxed row path through the same
		// plan, bit-identically. Non-resident catalogs (disk engine) also
		// fall through to the row path: the columnar caches live on
		// concrete in-memory relations, and pinning them would defeat the
		// out-of-core engine.
		ctx.Dict = db.Dict()
	}
	return plan.Run(ctx)
}

// evalRuleMaterialized is the legacy relation-at-a-time path (the
// ExecMaterialize baseline): every join step materializes its binding
// relation via the step Executor.
func evalRuleMaterialized(db *storage.Database, r *datalog.Rule, out []datalog.Term, o *Options) (*storage.Relation, error) {
	ex, err := NewExecutor(db, r, o.Trace)
	if err != nil {
		return nil, err
	}
	ex.SetWorkers(o.Workers)
	ex.SetGate(o.gate())
	order, err := ResolveOrder(db, r, o)
	if err != nil {
		return nil, err
	}
	for _, i := range order {
		if ex.Joined(i) { // absorbed into an earlier scan as a semi-join
			continue
		}
		if err := ex.JoinNext(i); err != nil {
			return nil, err
		}
	}
	res, err := ex.Finish(out)
	if err != nil {
		return nil, err
	}
	// The projected result is this evaluation's answer — the same place
	// the streaming executor's sink applies the row budget.
	if err := o.gate().CheckOutput(res.Len()); err != nil {
		return nil, err
	}
	return res, nil
}

// EvalUnion evaluates a union of rules and unions the projected results.
// outFor returns the output terms for each rule; the projections must have
// equal arity. Set semantics: duplicates across rules collapse.
func EvalUnion(db *storage.Database, u datalog.Union, outFor func(*datalog.Rule) []datalog.Term, opts *Options) (*storage.Relation, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	// Resolve the gate once so every branch — parallel or not — shares
	// one wall clock and budget.
	o := opts.orDefault().withGate()
	if o.Exec.Streaming() && !(o.Parallel && len(u) > 1) {
		// Compile the whole union to one fused plan: per-branch pipelines
		// (deduplicated projections) concatenated by a union operator into
		// one sink. Branch order and per-branch emission order match the
		// materializing merge exactly.
		branches := make([]physical.Node, len(u))
		for i, r := range u {
			order, err := ResolveOrder(db, r, &o)
			if err != nil {
				return nil, err
			}
			node, err := physical.CompileRule(db, r, physical.RuleOpts{Order: order, Out: outFor(r), Dedup: true})
			if err != nil {
				return nil, err
			}
			branches[i] = node
		}
		in := branches[0]
		if len(branches) > 1 {
			un, err := physical.NewUnion(branches)
			if err != nil {
				return nil, err
			}
			in = un
		}
		plan := physical.NewPlan(physical.NewMaterialize("answer", in, nil, "", nil))
		return RunPlan(db, plan, &o)
	}
	parts := make([]*storage.Relation, len(u))
	if o.Parallel && len(u) > 1 {
		var wg sync.WaitGroup
		errs := make([]error, len(u))
		for i, r := range u {
			wg.Add(1)
			go func(i int, r *datalog.Rule) {
				defer wg.Done()
				parts[i], errs[i] = EvalRule(db, r, outFor(r), &o)
			}(i, r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i, r := range u {
			part, err := EvalRule(db, r, outFor(r), &o)
			if err != nil {
				return nil, err
			}
			parts[i] = part
		}
	}

	result := parts[0]
	for _, part := range parts[1:] {
		if result.Arity() != part.Arity() {
			return nil, fmt.Errorf("eval: union branches project %d vs %d columns", result.Arity(), part.Arity())
		}
		for _, t := range part.Tuples() {
			result.Insert(t)
		}
	}
	if err := o.gate().CheckOutput(result.Len()); err != nil {
		return nil, err
	}
	return result, nil
}

// EvalGround evaluates a fully instantiated rule (no parameters) and
// reports the tuples of its head predicate — the per-assignment "result of
// the query" of the flock semantics (§2).
func EvalGround(db *storage.Database, r *datalog.Rule, opts *Options) (*storage.Relation, error) {
	if ps := r.Params(); len(ps) > 0 {
		return nil, fmt.Errorf("eval: rule still has parameters %v", ps)
	}
	return EvalRule(db, r, nil, opts)
}
