package eval

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// OrderStrategy selects the join order for a rule's positive atoms.
type OrderStrategy int

const (
	// OrderGreedy starts from the smallest base relation and repeatedly
	// joins the connected atom with the smallest base relation, falling
	// back to the smallest disconnected atom (a cross product) only when
	// nothing is connected. This is the default.
	OrderGreedy OrderStrategy = iota
	// OrderBodyOrder joins atoms in the order they appear in the rule body,
	// emulating a naive left-to-right evaluator (used as the "unoptimized
	// SQL" baseline of §1.3).
	OrderBodyOrder
	// OrderExhaustive enumerates all permutations of up to a small number
	// of atoms, picking the one whose estimated intermediate sizes are
	// smallest under the independence cost model. Falls back to greedy for
	// wide rules.
	OrderExhaustive
)

// String names the strategy.
func (s OrderStrategy) String() string {
	switch s {
	case OrderGreedy:
		return "greedy"
	case OrderBodyOrder:
		return "body-order"
	case OrderExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("OrderStrategy(%d)", int(s))
	}
}

// exhaustiveLimit bounds the permutation search; 8! = 40320 orders is the
// most we enumerate before falling back to greedy.
const exhaustiveLimit = 8

// JoinOrder computes the order in which to join r's positive atoms,
// returned as indices into r.PositiveAtoms().
func JoinOrder(db *storage.Database, r *datalog.Rule, strategy OrderStrategy) ([]int, error) {
	atoms := r.PositiveAtoms()
	switch strategy {
	case OrderBodyOrder:
		out := make([]int, len(atoms))
		for i := range out {
			out[i] = i
		}
		return out, nil
	case OrderGreedy:
		return greedyOrder(db, atoms)
	case OrderExhaustive:
		if len(atoms) > exhaustiveLimit {
			return greedyOrder(db, atoms)
		}
		return exhaustiveOrder(db, atoms)
	default:
		return nil, fmt.Errorf("eval: unknown order strategy %d", int(strategy))
	}
}

// atomTermCols returns the column names bound by the atom's variable and
// parameter arguments.
func atomTermCols(a *datalog.Atom) map[string]struct{} {
	out := make(map[string]struct{}, len(a.Args))
	for _, t := range a.Args {
		if col, ok := termColumn(t); ok {
			out[col] = struct{}{}
		}
	}
	return out
}

func greedyOrder(db *storage.Database, atoms []*datalog.Atom) ([]int, error) {
	sizes := make([]int, len(atoms))
	for i, a := range atoms {
		src, err := db.Source(a.Pred)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		sizes[i] = src.Len()
	}
	used := make([]bool, len(atoms))
	bound := make(map[string]struct{})
	order := make([]int, 0, len(atoms))
	for len(order) < len(atoms) {
		best, bestConnected := -1, false
		for i := range atoms {
			if used[i] {
				continue
			}
			connected := len(order) == 0 // the first atom counts as connected
			if !connected {
				for col := range atomTermCols(atoms[i]) {
					if _, ok := bound[col]; ok {
						connected = true
						break
					}
				}
			}
			switch {
			case best < 0,
				connected && !bestConnected,
				connected == bestConnected && sizes[i] < sizes[best]:
				best, bestConnected = i, connected
			}
		}
		used[best] = true
		order = append(order, best)
		for col := range atomTermCols(atoms[best]) {
			bound[col] = struct{}{}
		}
	}
	return order, nil
}

// exhaustiveOrder scores every permutation with estimateOrderCost and
// returns the cheapest; ties break toward the lexicographically first
// order, keeping results deterministic.
func exhaustiveOrder(db *storage.Database, atoms []*datalog.Atom) ([]int, error) {
	n := len(atoms)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best []int
	bestCost := -1.0
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			cost := estimateOrderCost(db, atoms, perm)
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = append(best[:0], perm...)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	// Validate relations up front so the cost function can assume presence.
	for _, a := range atoms {
		if _, err := db.Source(a.Pred); err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
	}
	recurse(0)
	if best == nil { // zero atoms
		return []int{}, nil
	}
	return best, nil
}

// estimateOrderCost estimates the sum of intermediate-result sizes of a
// join order under the classic System-R independence assumptions: joining
// on a shared column divides the cross-product size by the larger distinct
// count of that column on either side.
func estimateOrderCost(db *storage.Database, atoms []*datalog.Atom, order []int) float64 {
	type side struct {
		rows     float64
		distinct map[string]float64
	}
	cur := side{rows: 1, distinct: map[string]float64{}}
	total := 0.0
	for _, i := range order {
		rel := db.MustSource(atoms[i].Pred)
		next := side{rows: cur.rows * float64(rel.Len()), distinct: map[string]float64{}}
		for col := range cur.distinct {
			next.distinct[col] = cur.distinct[col]
		}
		for _, t := range atoms[i].Args {
			col, ok := termColumn(t)
			if !ok {
				continue
			}
			d := float64(distinctOf(rel, atoms[i], t))
			if d < 1 {
				d = 1
			}
			if prev, bound := cur.distinct[col]; bound {
				sel := prev
				if d > sel {
					sel = d
				}
				next.rows /= sel
				if d < prev {
					next.distinct[col] = d
				}
			} else {
				next.distinct[col] = d
			}
		}
		if next.rows < 1 {
			next.rows = 1
		}
		total += next.rows
		cur = next
	}
	return total
}

// distinctOf returns the distinct count of the base-relation column where
// term t appears in atom a (first occurrence).
func distinctOf(rel storage.RelationSource, a *datalog.Atom, t datalog.Term) int {
	for i, u := range a.Args {
		if u == t {
			return rel.DistinctCount(rel.Columns()[i])
		}
	}
	return rel.Len()
}
