package eval

import (
	"fmt"
	"strings"
	"sync"

	"queryflocks/internal/obs"
)

// TraceStep is the legacy stringly view of one recorded operator: its
// rendered description and output size. New code should read the typed
// obs.Event list via Events instead.
type TraceStep struct {
	Desc string
	Rows int
}

// Trace accumulates the intermediate-result observations of an evaluation.
// It is a thin adapter over an obs.Collector: the engine records typed
// obs.Events (operator kind, rows in/out, workers, wall time) and Trace
// re-renders them through the historical string API. Recording is safe
// from concurrent branches (parallel union evaluation); step order across
// branches is then nondeterministic.
type Trace struct {
	mu sync.Mutex
	c  *obs.Collector
}

// Collector returns the trace's underlying event collector, creating it on
// first use. Nil-safe: a nil *Trace yields a nil *Collector, whose Record
// is a no-op, so callers may thread `trace.Collector()` unconditionally.
func (t *Trace) Collector() *obs.Collector {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c == nil {
		t.c = obs.NewCollector()
	}
	return t.c
}

// Add records an externally performed step (e.g. a FILTER reduction done by
// a planner between joins) as an untyped note event.
func (t *Trace) Add(desc string, rows int) {
	t.Collector().Record(obs.Event{Op: obs.OpNote, Desc: desc, RowsOut: rows})
}

// Events returns the typed events recorded so far.
func (t *Trace) Events() []obs.Event { return t.Collector().Events() }

// Steps renders the typed events through the legacy stringly view.
func (t *Trace) Steps() []TraceStep {
	events := t.Events()
	out := make([]TraceStep, len(events))
	for i, e := range events {
		out[i] = TraceStep{Desc: e.Label(), Rows: e.RowsOut}
	}
	return out
}

// Report aggregates the trace into a machine-readable RunReport; see
// obs.Collector.Report.
func (t *Trace) Report(strategy string, workers, answerRows int) *obs.RunReport {
	return t.Collector().Report(strategy, workers, answerRows)
}

// MaxRows returns the largest intermediate size seen — the usual proxy for
// the memory high-water mark of a join pipeline.
func (t *Trace) MaxRows() int {
	max := 0
	for _, e := range t.Events() {
		if e.RowsOut > max {
			max = e.RowsOut
		}
	}
	return max
}

// TotalRows returns the sum of all intermediate sizes — the cost proxy the
// planner's estimates are calibrated against.
func (t *Trace) TotalRows() int {
	total := 0
	for _, e := range t.Events() {
		total += e.RowsOut
	}
	return total
}

// String renders the trace one step per line.
func (t *Trace) String() string {
	var b strings.Builder
	for i, e := range t.Events() {
		fmt.Fprintf(&b, "%2d. %-40s %8d rows\n", i+1, e.Label(), e.RowsOut)
	}
	return strings.TrimRight(b.String(), "\n")
}
