package eval

import (
	"fmt"
	"strings"
	"sync"
)

// TraceStep records one operator application and the size of its result.
// The dynamic strategy of §4.4 reads these sizes to decide whether a FILTER
// step is worthwhile; benches and the CLI's explain mode print them.
type TraceStep struct {
	Desc string
	Rows int
}

// Trace accumulates the intermediate-result sizes of an evaluation.
// Recording is safe from concurrent branches (parallel union evaluation);
// step order across branches is then nondeterministic.
type Trace struct {
	mu    sync.Mutex
	Steps []TraceStep
}

func (t *Trace) add(desc string, rows int) {
	t.mu.Lock()
	t.Steps = append(t.Steps, TraceStep{Desc: desc, Rows: rows})
	t.mu.Unlock()
}

// Add records an externally performed step (e.g. a FILTER reduction done by
// a planner between joins).
func (t *Trace) Add(desc string, rows int) { t.add(desc, rows) }

// MaxRows returns the largest intermediate size seen — the usual proxy for
// the memory high-water mark of a join pipeline.
func (t *Trace) MaxRows() int {
	max := 0
	for _, s := range t.Steps {
		if s.Rows > max {
			max = s.Rows
		}
	}
	return max
}

// TotalRows returns the sum of all intermediate sizes — the cost proxy the
// planner's estimates are calibrated against.
func (t *Trace) TotalRows() int {
	total := 0
	for _, s := range t.Steps {
		total += s.Rows
	}
	return total
}

// String renders the trace one step per line.
func (t *Trace) String() string {
	var b strings.Builder
	for i, s := range t.Steps {
		fmt.Fprintf(&b, "%2d. %-40s %8d rows\n", i+1, s.Desc, s.Rows)
	}
	return strings.TrimRight(b.String(), "\n")
}
