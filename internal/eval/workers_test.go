package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// workerSweep is the worker-count matrix every parallel-operator property
// test runs: sequential, a couple of awkward splits, and more workers than
// this container has cores.
var workerSweep = []int{1, 2, 3, 8}

// randomJoinDB builds a database large enough (well past minParallelRows)
// to exercise the partitioned join paths, with enough key collisions that
// joins fan out and negations actually remove rows.
func randomJoinDB(rng *rand.Rand) *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B")
	s := storage.NewRelation("s", "B", "C")
	u := storage.NewRelation("u", "A", "C")
	for i := 0; i < 4_000; i++ {
		r.InsertValues(storage.Int(int64(rng.Intn(120))), storage.Int(int64(rng.Intn(120))))
		s.InsertValues(storage.Int(int64(rng.Intn(120))), storage.Int(int64(rng.Intn(120))))
		u.InsertValues(storage.Int(int64(rng.Intn(120))), storage.Int(int64(rng.Intn(120))))
	}
	db.Add(r)
	db.Add(s)
	db.Add(u)
	return db
}

// TestParallelJoinMatchesSequential checks EvalRule is invariant in the
// worker count on randomized instances, for rule shapes covering plain
// joins, absorbed comparisons, negated atoms (both absorbed into scans and
// applied as anti-joins), and semi-join absorption. Equality is checked on
// tuple order, not just set membership: the worker-order Builder merge is
// specified to reproduce sequential insertion order exactly.
func TestParallelJoinMatchesSequential(t *testing.T) {
	rules := []string{
		`answer(A,C) :- r(A,B) AND s(B,C)`,
		`answer(A,C) :- r(A,B) AND s(B,C) AND A < C`,
		`answer(A,C) :- r(A,B) AND s(B,C) AND NOT u(A,C)`,
		`answer(A,C) :- r(A,B) AND s(B,C) AND u(A,C)`,
		`answer(A,C) :- r(A,B) AND s(B,C) AND NOT u(A,C) AND B != C`,
	}
	for seed := int64(0); seed < 3; seed++ {
		db := randomJoinDB(rand.New(rand.NewSource(seed)))
		for _, src := range rules {
			rule, err := datalog.ParseRule(src)
			if err != nil {
				t.Fatalf("ParseRule(%q): %v", src, err)
			}
			want, err := EvalRule(db, rule, nil, &Options{Workers: 1})
			if err != nil {
				t.Fatalf("seed %d rule %q workers=1: %v", seed, src, err)
			}
			for _, w := range workerSweep[1:] {
				got, err := EvalRule(db, rule, nil, &Options{Workers: w})
				if err != nil {
					t.Fatalf("seed %d rule %q workers=%d: %v", seed, src, w, err)
				}
				if !got.Equal(want) {
					t.Fatalf("seed %d rule %q workers=%d: %d tuples, want %d",
						seed, src, w, got.Len(), want.Len())
				}
				for i, tu := range got.Tuples() {
					if !tu.Equal(want.Tuples()[i]) {
						t.Fatalf("seed %d rule %q workers=%d: tuple order diverges at %d",
							seed, src, w, i)
					}
				}
			}
		}
	}
}

// TestParallelAntiJoinDirect drives the anti-join operator directly (in
// rule evaluation negations are usually absorbed into scans, so this is
// the only way to exercise its partitioned path on a large binding
// relation).
func TestParallelAntiJoinDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := storage.NewDatabase()
	ban := storage.NewRelation("ban", "A", "B")
	for i := 0; i < 900; i++ {
		ban.InsertValues(storage.Int(int64(rng.Intn(60))), storage.Int(int64(rng.Intn(60))))
	}
	db.Add(ban)

	cur := storage.NewRelation("cur", "A", "B")
	for i := 0; i < 3_000; i++ {
		cur.InsertValues(storage.Int(int64(rng.Intn(60))), storage.Int(int64(rng.Intn(60))))
	}
	atom := &datalog.Atom{Pred: "ban", Args: []datalog.Term{datalog.Var("A"), datalog.Var("B")}}

	want, _, err := antiJoin(db, cur, atom, "out", 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 || want.Len() == cur.Len() {
		t.Fatalf("degenerate anti-join: %d of %d survive", want.Len(), cur.Len())
	}
	for _, w := range workerSweep[1:] {
		got, _, err := antiJoin(db, cur, atom, "out", w)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: %d tuples, want %d", w, got.Len(), want.Len())
		}
		for i, tu := range got.Tuples() {
			if !tu.Equal(want.Tuples()[i]) {
				t.Fatalf("workers=%d: tuple order diverges at %d", w, i)
			}
		}
	}
}

// TestJoinAtomDirectWorkers drives joinAtom directly with a constant
// argument and a repeated variable, the classification branches EvalRule
// rules above don't reach, across the worker sweep.
func TestJoinAtomDirectWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := storage.NewDatabase()
	s := storage.NewRelation("s", "B", "C", "D")
	for i := 0; i < 2_000; i++ {
		b := storage.Int(int64(rng.Intn(40)))
		c := storage.Int(int64(rng.Intn(6)))
		d := storage.Int(int64(rng.Intn(40)))
		if rng.Intn(3) == 0 {
			d = b // feed the repeated-variable dup check
		}
		s.Insert(storage.Tuple{b, c, d})
	}
	db.Add(s)

	cur := storage.NewRelation("cur", "B")
	for i := 0; i < 1_000; i++ {
		cur.InsertValues(storage.Int(int64(rng.Intn(40))))
	}
	// s(B, 3, B): probe on bound B, constant 3, and D forced equal to B.
	atom := &datalog.Atom{Pred: "s", Args: []datalog.Term{
		datalog.Var("B"), datalog.Const{Val: storage.Int(3)}, datalog.Var("B"),
	}}

	want, _, err := joinAtom(db, cur, atom, "out", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("degenerate join: no matches")
	}
	for _, w := range workerSweep[1:] {
		got, _, err := joinAtom(db, cur, atom, "out", nil, w)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: %d tuples, want %d", w, got.Len(), want.Len())
		}
	}
}

// TestSetWorkersZeroAndNegative pins the knob convention: 0 and negative
// counts must behave like valid configurations (per-CPU and sequential),
// never panic or change the answer.
func TestSetWorkersZeroAndNegative(t *testing.T) {
	db := randomJoinDB(rand.New(rand.NewSource(1)))
	rule, err := datalog.ParseRule(`answer(A,C) :- r(A,B) AND s(B,C)`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvalRule(db, rule, nil, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, -3} {
		got, err := EvalRule(db, rule, nil, &Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d changed the answer", w)
		}
	}
}

// TestParallelJoinManyShapes fuzzes rule shapes over the worker sweep with
// randomized relation contents; failure messages carry the seed for
// replay.
func TestParallelJoinManyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped with -short")
	}
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomJoinDB(rng)
		src := fmt.Sprintf(`answer(A,C) :- r(A,B) AND s(B,C) AND A %s C`,
			[]string{"<", "<=", "!="}[rng.Intn(3)])
		rule, err := datalog.ParseRule(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EvalRule(db, rule, nil, &Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w := workerSweep[1:][rng.Intn(len(workerSweep)-1)]
		got, err := EvalRule(db, rule, nil, &Options{Workers: w})
		if err != nil {
			t.Fatalf("seed %d workers=%d: %v", seed, w, err)
		}
		if !got.Equal(want) {
			t.Fatalf("seed %d workers=%d: %d tuples, want %d", seed, w, got.Len(), want.Len())
		}
	}
}
