// Package eval is the query processor of the flock system: it evaluates
// extended conjunctive queries (and unions of them) bottom-up against a
// storage.Database using hash joins, anti-joins for negated subgoals, and
// eager application of arithmetic comparisons.
//
// The package exposes two levels. EvalRule/EvalUnion evaluate a whole query
// under a join-order strategy. Executor exposes the individual join steps,
// which the dynamic strategy of §4.4 needs: it interleaves joins with
// "should we filter now?" decisions based on the sizes of intermediate
// relations, so it must see each intermediate result as it is produced.
package eval

import (
	"fmt"
	"time"

	"queryflocks/internal/datalog"
	"queryflocks/internal/obs"
	"queryflocks/internal/par"
	"queryflocks/internal/physical"
	"queryflocks/internal/storage"
)

// minParallelRows is the binding-relation size below which join operators
// stay sequential even when more workers are available: under a few
// hundred probe rows, goroutine startup and per-worker state dominate any
// scan overlap.
const minParallelRows = 256

// termColumn returns the intermediate-relation column name for a term.
// Variables map to their own name; parameters are prefixed with '$', which
// cannot collide with a variable name.
func termColumn(t datalog.Term) (string, bool) {
	switch x := t.(type) {
	case datalog.Var:
		return string(x), true
	case datalog.Param:
		return "$" + string(x), true
	default:
		return "", false
	}
}

// Executor evaluates one rule's body subgoal-by-subgoal. The current state
// is a binding relation whose columns are the variables and parameters
// bound so far. Negated subgoals and comparisons are applied automatically
// as soon as all their terms are bound ("pushed down"); rule safety
// guarantees they all apply by the time every positive atom is joined.
type Executor struct {
	db   *storage.Database
	rule *datalog.Rule

	cur        *storage.Relation
	joined     []bool // per positive-atom index
	pendingCmp []*datalog.Comparison
	pendingNeg []*datalog.Atom

	workers int            // join/anti-join worker count; see SetWorkers
	col     *obs.Collector // typed event sink; nil when not tracing
	gate    *physical.Gate // cancellation/budget checkpoint; nil when unlimited
	steps   int
}

// SetWorkers sets the worker count for the partitioned hash-join and
// anti-join operators: 0 (the default) means one worker per CPU, 1 forces
// the sequential paths, larger values are used as given. Results are
// identical for every worker count; only the wall-clock changes.
func (e *Executor) SetWorkers(n int) { e.workers = n }

// SetGate installs the evaluation's cancellation and budget checkpoint.
// The executor consults it at relation boundaries — before each join
// step and each pushed-down subgoal application — and feeds the
// simultaneously-live tuple counts into its tuple budget, mirroring the
// streaming executor's batch-boundary checks. A nil gate is unlimited.
func (e *Executor) SetGate(g *physical.Gate) { e.gate = g }

// NewExecutor prepares evaluation of r's body against db. The rule must be
// safe (§3.3) — unsafe rules denote infinite results. Any relation named by
// a body atom must exist in db with matching arity.
func NewExecutor(db *storage.Database, r *datalog.Rule, trace *Trace) (*Executor, error) {
	if vs := datalog.CheckSafety(r); len(vs) > 0 {
		return nil, fmt.Errorf("eval: rule %s is unsafe: %v", r.Head, vs[0])
	}
	for _, sg := range r.Body {
		a, ok := sg.(*datalog.Atom)
		if !ok {
			continue
		}
		rel, err := db.Relation(a.Pred)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		if rel.Arity() != len(a.Args) {
			return nil, fmt.Errorf("eval: atom %s has %d arguments but relation %s has %d columns",
				a, len(a.Args), a.Pred, rel.Arity())
		}
	}
	e := &Executor{
		db:         db,
		rule:       r,
		cur:        unitRelation(),
		joined:     make([]bool, len(r.PositiveAtoms())),
		pendingCmp: r.Comparisons(),
		pendingNeg: r.NegatedAtoms(),
		col:        trace.Collector(),
	}
	// Constant-only comparisons (and any already-applicable subgoals)
	// resolve immediately.
	if err := e.applyPending(); err != nil {
		return nil, err
	}
	return e, nil
}

// unitRelation is the zero-column relation holding the single empty tuple —
// the identity for join.
func unitRelation() *storage.Relation {
	r := storage.NewRelation("unit")
	r.Insert(storage.Tuple{})
	return r
}

// Current returns the current binding relation. Callers must not mutate it.
func (e *Executor) Current() *storage.Relation { return e.cur }

// ReplaceCurrent substitutes a reduced binding relation (same columns) for
// the current one. The dynamic strategy uses this after a FILTER reduction.
func (e *Executor) ReplaceCurrent(rel *storage.Relation) error {
	if got, want := rel.Columns(), e.cur.Columns(); len(got) != len(want) {
		return fmt.Errorf("eval: ReplaceCurrent with %d columns, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("eval: ReplaceCurrent column %d is %q, want %q", i, got[i], want[i])
			}
		}
	}
	e.cur = rel
	return nil
}

// Remaining returns the indices of positive atoms not yet joined, in body
// order of the positive-atom list.
func (e *Executor) Remaining() []int {
	var out []int
	for i, done := range e.joined {
		if !done {
			out = append(out, i)
		}
	}
	return out
}

// Joined reports whether the i-th positive atom has been joined (directly
// or by absorption into another atom's scan).
func (e *Executor) Joined(i int) bool { return e.joined[i] }

// Done reports whether every positive atom has been joined.
func (e *Executor) Done() bool { return len(e.Remaining()) == 0 }

// PositiveAtom returns the i-th positive atom of the rule.
func (e *Executor) PositiveAtom(i int) *datalog.Atom { return e.rule.PositiveAtoms()[i] }

// JoinNext joins the i-th positive atom into the current bindings. Pending
// subgoals that become decidable during the scan — comparisons, negations,
// and positive atoms acting as semi-join reducers (every term constant,
// already bound, or bound by this atom) — are absorbed into the scan
// itself, so their filtering applies before the joined rows materialize.
// This is the shape of the paper's Fig. 9 plan, where the reducer
// "templ($s) JOIN exhibits(P,$s)" runs as one operation. Any remaining
// pending subgoal that became fully bound is applied afterwards.
func (e *Executor) JoinNext(i int) error {
	atoms := e.rule.PositiveAtoms()
	if i < 0 || i >= len(atoms) {
		return fmt.Errorf("eval: positive-atom index %d out of range", i)
	}
	if e.joined[i] {
		return fmt.Errorf("eval: atom %d (%s) already joined", i, atoms[i])
	}
	if err := e.gate.Check(); err != nil {
		return err
	}
	checks, absorbed, err := e.absorbChecks(atoms[i])
	if err != nil {
		return err
	}
	prevLen := e.cur.Len()
	var start time.Time
	if e.col != nil { // skip timing work entirely when not tracing
		start = time.Now()
	}
	next, used, err := joinAtom(e.db, e.cur, atoms[i], e.stepName(), checks, e.workers)
	if err != nil {
		return err
	}
	e.joined[i] = true
	e.cur = next
	// Relation-at-a-time evaluation keeps the probe-side bindings and the
	// joined result fully materialized at once; that simultaneously-live
	// count feeds both the peak gauge and the tuple budget, mirroring the
	// streaming executor's buffered-tuple gauge.
	e.gate.NoteLive(prevLen + next.Len())
	if e.col != nil {
		e.col.Record(obs.Event{
			Op:       obs.OpJoin,
			Desc:     atoms[i].String(),
			RowsIn:   prevLen,
			RowsOut:  next.Len(),
			Absorbed: absorbed,
			Workers:  used,
			Wall:     time.Since(start),
		})
		e.col.ObservePeak(prevLen + next.Len())
	}
	return e.applyPending()
}

// rowCheck decides one (binding, candidate) row pair during a join scan.
type rowCheck func(ct, bt storage.Tuple) bool

// rowCheckFactory instantiates a rowCheck. Factories exist because some
// checks carry reusable probe buffers: each worker of a partitioned scan
// instantiates its own copies so no mutable state is shared across
// goroutines. Stateless checks return the same closure every time.
type rowCheckFactory func() rowCheck

// instantiateChecks materializes one worker's private check set.
func instantiateChecks(fs []rowCheckFactory) []rowCheck {
	if len(fs) == 0 {
		return nil
	}
	out := make([]rowCheck, len(fs))
	for i, f := range fs {
		out[i] = f()
	}
	return out
}

// absorbChecks builds per-row checks for every pending subgoal decidable
// during the scan of atom, removing the absorbed subgoals from the pending
// lists and marking absorbed positive atoms as joined.
func (e *Executor) absorbChecks(atom *datalog.Atom) ([]rowCheckFactory, int, error) {
	curCols := make(map[string]int, e.cur.Arity())
	for i, c := range e.cur.Columns() {
		curCols[c] = i
	}
	atomPos := make(map[string]int, len(atom.Args))
	for i, t := range atom.Args {
		if col, ok := termColumn(t); ok {
			if _, dup := atomPos[col]; !dup {
				atomPos[col] = i
			}
		}
	}
	// getter resolves a term's value per scanned row pair, or fails if the
	// term is not determined by (cur, atom).
	getter := func(t datalog.Term) (func(ct, bt storage.Tuple) storage.Value, bool) {
		if c, isConst := t.(datalog.Const); isConst {
			v := c.Val
			return func(storage.Tuple, storage.Tuple) storage.Value { return v }, true
		}
		col, _ := termColumn(t)
		if p, ok := curCols[col]; ok {
			return func(ct, _ storage.Tuple) storage.Value { return ct[p] }, true
		}
		if p, ok := atomPos[col]; ok {
			return func(_, bt storage.Tuple) storage.Value { return bt[p] }, true
		}
		return nil, false
	}
	getters := func(terms []datalog.Term) ([]func(ct, bt storage.Tuple) storage.Value, bool) {
		out := make([]func(ct, bt storage.Tuple) storage.Value, len(terms))
		for i, t := range terms {
			g, ok := getter(t)
			if !ok {
				return nil, false
			}
			out[i] = g
		}
		return out, true
	}

	var checks []rowCheckFactory

	var keepCmp []*datalog.Comparison
	for _, c := range e.pendingCmp {
		gs, ok := getters([]datalog.Term{c.Left, c.Right})
		if !ok {
			keepCmp = append(keepCmp, c)
			continue
		}
		op := c.Op
		// Comparison checks are stateless; every worker shares one closure.
		cmp := func(ct, bt storage.Tuple) bool {
			return op.Eval(gs[0](ct, bt), gs[1](ct, bt))
		}
		checks = append(checks, func() rowCheck { return cmp })
	}
	e.pendingCmp = keepCmp

	var keepNeg []*datalog.Atom
	for _, a := range e.pendingNeg {
		gs, ok := getters(a.Args)
		if !ok {
			keepNeg = append(keepNeg, a)
			continue
		}
		rel, err := e.db.Relation(a.Pred)
		if err != nil {
			return nil, 0, fmt.Errorf("eval: %w", err)
		}
		if rel.Arity() != len(a.Args) {
			return nil, 0, fmt.Errorf("eval: atom %s arity %d vs relation arity %d", a, len(a.Args), rel.Arity())
		}
		checks = append(checks, membershipCheck(rel, gs, false))
	}
	e.pendingNeg = keepNeg

	// Positive atoms whose every term is determined act as semi-joins.
	atoms := e.rule.PositiveAtoms()
	for j, a := range atoms {
		if e.joined[j] || a == atom {
			continue
		}
		gs, ok := getters(a.Args)
		if !ok {
			continue
		}
		rel, err := e.db.Relation(a.Pred)
		if err != nil {
			return nil, 0, fmt.Errorf("eval: %w", err)
		}
		if rel.Arity() != len(a.Args) {
			return nil, 0, fmt.Errorf("eval: atom %s arity %d vs relation arity %d", a, len(a.Args), rel.Arity())
		}
		checks = append(checks, membershipCheck(rel, gs, true))
		e.joined[j] = true
	}
	return checks, len(checks), nil
}

// membershipCheck builds a rowCheck factory testing (non-)membership of
// the resolved tuple in rel. Each instantiation owns a private probe tuple
// and key buffer, so workers never contend, and the membership test
// encodes into the reused buffer instead of allocating a key string per
// probed row.
func membershipCheck(rel *storage.Relation, gs []func(ct, bt storage.Tuple) storage.Value, want bool) rowCheckFactory {
	return func() rowCheck {
		probe := make(storage.Tuple, len(gs))
		var buf []byte
		return func(ct, bt storage.Tuple) bool {
			for i, g := range gs {
				probe[i] = g(ct, bt)
			}
			buf = probe.AppendKey(buf[:0])
			return rel.ContainsKey(buf) == want
		}
	}
}

func (e *Executor) stepName() string {
	e.steps++
	return fmt.Sprintf("bind%d", e.steps)
}

// applyPending applies comparisons and negations whose terms are all bound.
func (e *Executor) applyPending() error {
	bound := make(map[string]int, e.cur.Arity())
	for i, c := range e.cur.Columns() {
		bound[c] = i
	}
	isBound := func(t datalog.Term) bool {
		if _, isConst := t.(datalog.Const); isConst {
			return true
		}
		col, _ := termColumn(t)
		_, ok := bound[col]
		return ok
	}

	var keepCmp []*datalog.Comparison
	for _, c := range e.pendingCmp {
		if !isBound(c.Left) || !isBound(c.Right) {
			keepCmp = append(keepCmp, c)
			continue
		}
		if err := e.gate.Check(); err != nil {
			return err
		}
		prevLen := e.cur.Len()
		var start time.Time
		if e.col != nil { // skip timing work entirely when not tracing
			start = time.Now()
		}
		e.cur = applyComparison(e.cur, c, e.stepName())
		e.gate.NoteLive(prevLen + e.cur.Len())
		if e.col != nil {
			e.col.Record(obs.Event{
				Op:      obs.OpSelect,
				Desc:    c.String(),
				RowsIn:  prevLen,
				RowsOut: e.cur.Len(),
				Wall:    time.Since(start),
			})
		}
	}
	e.pendingCmp = keepCmp

	var keepNeg []*datalog.Atom
	for _, a := range e.pendingNeg {
		all := true
		for _, t := range a.Args {
			if !isBound(t) {
				all = false
				break
			}
		}
		if !all {
			keepNeg = append(keepNeg, a)
			continue
		}
		if err := e.gate.Check(); err != nil {
			return err
		}
		prevLen := e.cur.Len()
		var start time.Time
		if e.col != nil {
			start = time.Now()
		}
		next, used, err := antiJoin(e.db, e.cur, a, e.stepName(), e.workers)
		if err != nil {
			return err
		}
		e.cur = next
		e.gate.NoteLive(prevLen + e.cur.Len())
		if e.col != nil {
			e.col.Record(obs.Event{
				Op:      obs.OpAntiJoin,
				Desc:    a.String(),
				RowsIn:  prevLen,
				RowsOut: e.cur.Len(),
				Workers: used,
				Wall:    time.Since(start),
			})
		}
	}
	e.pendingNeg = keepNeg
	return nil
}

// Finish verifies every subgoal was applied and projects the final binding
// relation onto the given output terms. Output columns are named after the
// terms (see termColumn); constant terms are not allowed here.
func (e *Executor) Finish(out []datalog.Term) (*storage.Relation, error) {
	if !e.Done() {
		return nil, fmt.Errorf("eval: %d positive atoms not yet joined", len(e.Remaining()))
	}
	if len(e.pendingCmp) > 0 || len(e.pendingNeg) > 0 {
		// Unreachable for safe rules; guard for internal consistency.
		return nil, fmt.Errorf("eval: %d comparisons and %d negations never became applicable",
			len(e.pendingCmp), len(e.pendingNeg))
	}
	if err := e.gate.Check(); err != nil {
		return nil, err
	}
	res, err := ProjectTerms(e.cur, out, "answer")
	if err == nil {
		// The final binding relation and its projection are live together.
		e.gate.NoteLive(e.cur.Len() + res.Len())
		if e.col != nil {
			e.col.ObservePeak(e.cur.Len() + res.Len())
		}
		if berr := e.gate.Check(); berr != nil {
			return nil, berr
		}
	}
	return res, err
}

// ProjectTerms projects a binding relation onto the given variable or
// parameter terms, deduplicating. Column names follow termColumn.
func ProjectTerms(rel *storage.Relation, out []datalog.Term, name string) (*storage.Relation, error) {
	cols := make([]string, len(out))
	pos := make([]int, len(out))
	for i, t := range out {
		col, ok := termColumn(t)
		if !ok {
			return nil, fmt.Errorf("eval: cannot project constant term %s", t)
		}
		p := rel.ColumnIndex(col)
		if p < 0 {
			return nil, fmt.Errorf("eval: term %s is not bound (columns %v)", t, rel.Columns())
		}
		cols[i] = col
		pos[i] = p
	}
	res := storage.NewRelation(name, cols...)
	for _, t := range rel.Tuples() {
		res.Insert(t.Project(pos))
	}
	return res, nil
}

// joinAtom hash-joins the current bindings with the atom's base relation.
// Each surviving (binding, candidate) pair must additionally pass every
// rowCheck (absorbed subgoals) before the joined row materializes.
//
// With workers > 1 (and enough binding rows), the probe side is range-
// partitioned: each worker probes its contiguous chunk of cur into its own
// storage.Builder with its own instantiated checks and probe-key buffer,
// and the builders are merged in worker order afterwards. Because every
// output row embeds its distinct binding tuple, two workers can never
// produce the same row, and the worker-order merge reproduces exactly the
// sequential insertion order.
// It additionally reports the worker count the scan actually ran with.
func joinAtom(db *storage.Database, cur *storage.Relation, atom *datalog.Atom, name string, checks []rowCheckFactory, workers int) (*storage.Relation, int, error) {
	base, err := db.Relation(atom.Pred)
	if err != nil {
		return nil, 0, fmt.Errorf("eval: %w", err)
	}
	if base.Arity() != len(atom.Args) {
		return nil, 0, fmt.Errorf("eval: atom %s arity %d vs relation arity %d", atom, len(atom.Args), base.Arity())
	}

	curCols := make(map[string]int, cur.Arity())
	for i, c := range cur.Columns() {
		curCols[c] = i
	}

	// Classify the atom's argument positions.
	type constPos struct {
		pos int
		val storage.Value
	}
	var (
		consts   []constPos // constant argument: part of the probe key
		probeRel []int      // base-relation positions probed from cur
		probeCur []int      // matching cur positions
		newCols  []string   // newly bound columns, in first-occurrence order
		newPos   []int      // base positions supplying them
		dupCheck [][2]int   // base positions that must be equal (repeated new var)
	)
	firstNew := make(map[string]int) // column -> base position of first occurrence
	for i, t := range atom.Args {
		if c, isConst := t.(datalog.Const); isConst {
			consts = append(consts, constPos{i, c.Val})
			continue
		}
		col, _ := termColumn(t)
		if p, bound := curCols[col]; bound {
			probeRel = append(probeRel, i)
			probeCur = append(probeCur, p)
			continue
		}
		if p, seen := firstNew[col]; seen {
			dupCheck = append(dupCheck, [2]int{p, i})
			continue
		}
		firstNew[col] = i
		newCols = append(newCols, col)
		newPos = append(newPos, i)
	}

	workers = par.Resolve(workers)
	if cur.Len() < minParallelRows {
		workers = 1
	}

	// The index covers constants first (fixed key prefix) then probed
	// positions.
	idxCols := make([]int, 0, len(consts)+len(probeRel))
	for _, c := range consts {
		idxCols = append(idxCols, c.pos)
	}
	idxCols = append(idxCols, probeRel...)
	idx := base.IndexParallel(idxCols, workers)

	outCols := append(append([]string(nil), cur.Columns()...), newCols...)
	out := storage.NewRelation(name, outCols...)

	// Constants contribute a fixed probe-key prefix, encoded once.
	var prefix []byte
	for _, c := range consts {
		prefix = c.val.AppendKey(prefix)
	}
	curTuples := cur.Tuples()

	// scan probes the binding tuples in [lo, hi) and emits surviving rows.
	// Each caller supplies private checks and receives a private key buffer,
	// so concurrent scans share only read-only state.
	scan := func(lo, hi int, cks []rowCheck, emit func(storage.Tuple)) {
		buf := append([]byte(nil), prefix...)
		for i := lo; i < hi; i++ {
			ct := curTuples[i]
			buf = buf[:len(prefix)]
			for _, p := range probeCur {
				buf = ct[p].AppendKey(buf)
			}
			matches := idx.LookupBytes(buf)
		match:
			for _, bt := range matches {
				for _, d := range dupCheck {
					if !bt[d[0]].Equal(bt[d[1]]) {
						continue match
					}
				}
				for _, check := range cks {
					if !check(ct, bt) {
						continue match
					}
				}
				row := make(storage.Tuple, 0, len(outCols))
				row = append(row, ct...)
				for _, p := range newPos {
					row = append(row, bt[p])
				}
				emit(row)
			}
		}
	}

	if workers <= 1 {
		scan(0, len(curTuples), instantiateChecks(checks), func(row storage.Tuple) { out.Insert(row) })
		return out, 1, nil
	}

	builders := make([]*storage.Builder, par.Chunks(len(curTuples), workers))
	par.Run(len(curTuples), workers, func(w, lo, hi int) {
		b := storage.NewBuilder(hi - lo)
		scan(lo, hi, instantiateChecks(checks), func(row storage.Tuple) { b.Add(row) })
		builders[w] = b
	})
	for _, b := range builders {
		out.AbsorbBuilder(b)
	}
	return out, workers, nil
}

// antiJoin removes bindings for which the (fully bound) negated atom holds.
// Like joinAtom, with workers > 1 the binding relation is range-partitioned
// into per-worker Builders merged in worker order; surviving rows are the
// (distinct) binding tuples themselves, so partitions cannot collide and
// the merged order equals the sequential one. It additionally reports the
// worker count the scan actually ran with.
func antiJoin(db *storage.Database, cur *storage.Relation, atom *datalog.Atom, name string, workers int) (*storage.Relation, int, error) {
	base, err := db.Relation(atom.Pred)
	if err != nil {
		return nil, 0, fmt.Errorf("eval: %w", err)
	}
	if base.Arity() != len(atom.Args) {
		return nil, 0, fmt.Errorf("eval: atom %s arity %d vs relation arity %d", atom, len(atom.Args), base.Arity())
	}
	curCols := make(map[string]int, cur.Arity())
	for i, c := range cur.Columns() {
		curCols[c] = i
	}
	// Column-offset plan for the membership probe: each atom argument is
	// either a constant (encoded once into the key prefix position) or a cur
	// column offset. srcPos[i] < 0 means "use constVal[i]".
	srcPos := make([]int, len(atom.Args))
	constVal := make([]storage.Value, len(atom.Args))
	for i, t := range atom.Args {
		if c, isConst := t.(datalog.Const); isConst {
			srcPos[i] = -1
			constVal[i] = c.Val
			continue
		}
		col, _ := termColumn(t)
		p, bound := curCols[col]
		if !bound {
			return nil, 0, fmt.Errorf("eval: negated atom %s has unbound term %s", atom, t)
		}
		srcPos[i] = p
	}

	workers = par.Resolve(workers)
	if cur.Len() < minParallelRows {
		workers = 1
	}

	out := storage.NewRelation(name, cur.Columns()...)
	curTuples := cur.Tuples()
	scan := func(lo, hi int, emit func(storage.Tuple)) {
		var buf []byte
		for i := lo; i < hi; i++ {
			ct := curTuples[i]
			buf = buf[:0]
			for j, p := range srcPos {
				if p < 0 {
					buf = constVal[j].AppendKey(buf)
				} else {
					buf = ct[p].AppendKey(buf)
				}
			}
			if !base.ContainsKey(buf) {
				emit(ct)
			}
		}
	}

	if workers <= 1 {
		scan(0, len(curTuples), func(ct storage.Tuple) { out.Insert(ct) })
		return out, 1, nil
	}

	builders := make([]*storage.Builder, par.Chunks(len(curTuples), workers))
	par.Run(len(curTuples), workers, func(w, lo, hi int) {
		b := storage.NewBuilder(hi - lo)
		scan(lo, hi, func(ct storage.Tuple) { b.Add(ct) })
		builders[w] = b
	})
	for _, b := range builders {
		out.AbsorbBuilder(b)
	}
	return out, workers, nil
}

// applyComparison filters bindings by a fully bound comparison.
func applyComparison(cur *storage.Relation, c *datalog.Comparison, name string) *storage.Relation {
	get := func(t datalog.Term) func(storage.Tuple) storage.Value {
		if cv, isConst := t.(datalog.Const); isConst {
			v := cv.Val
			return func(storage.Tuple) storage.Value { return v }
		}
		col, _ := termColumn(t)
		p := cur.ColumnIndex(col)
		return func(ct storage.Tuple) storage.Value { return ct[p] }
	}
	left, right := get(c.Left), get(c.Right)
	out := storage.NewRelation(name, cur.Columns()...)
	for _, ct := range cur.Tuples() {
		if c.Op.Eval(left(ct), right(ct)) {
			out.Insert(ct)
		}
	}
	return out
}
