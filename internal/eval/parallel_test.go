package eval

import (
	"math/rand"
	"sync"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

func TestParallelUnionMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B")
	s := storage.NewRelation("s", "A", "B")
	for i := 0; i < 3_000; i++ {
		r.InsertValues(storage.Int(int64(rng.Intn(300))), storage.Int(int64(rng.Intn(300))))
		s.InsertValues(storage.Int(int64(rng.Intn(300))), storage.Int(int64(rng.Intn(300))))
	}
	db.Add(r)
	db.Add(s)

	u, err := datalog.ParseUnion(`
		answer(A) :- r(A,$x) AND s($x,B)
		answer(B) :- s(A,$x) AND r($x,B)
		answer(A) :- r(A,$x) AND r($x,A)`)
	if err != nil {
		t.Fatal(err)
	}
	outFor := func(rule *datalog.Rule) []datalog.Term {
		return []datalog.Term{datalog.Param("x"), rule.Head.Args[0]}
	}

	seq, err := EvalUnion(db, u, outFor, &Options{Parallel: false})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	par, err := EvalUnion(db, u, outFor, &Options{Parallel: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(seq) {
		t.Fatalf("parallel union differs: %d vs %d tuples", par.Len(), seq.Len())
	}
	if len(tr.Steps()) == 0 {
		t.Error("trace should record steps from all branches")
	}
}

func TestParallelUnionPropagatesErrors(t *testing.T) {
	db := storage.NewDatabase()
	db.Add(storage.NewRelation("r", "A"))
	u, err := datalog.ParseUnion(`
		answer(A) :- r(A) AND missing(A,$x)
		answer(A) :- r(A) AND r($x)`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = EvalUnion(db, u, func(rule *datalog.Rule) []datalog.Term {
		return rule.Head.Args
	}, &Options{Parallel: true})
	if err == nil {
		t.Error("missing relation in one branch should fail the union")
	}
}

// TestConcurrentIndexBuild hammers lazy index construction from many
// goroutines; run with -race to verify the locking.
func TestConcurrentIndexBuild(t *testing.T) {
	r := storage.NewRelation("r", "A", "B", "C")
	for i := 0; i < 5_000; i++ {
		r.InsertValues(storage.Int(int64(i%97)), storage.Int(int64(i%31)), storage.Int(int64(i)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				cols := []int{(g + k) % 3}
				ix := r.Index(cols)
				if ix.GroupCount() == 0 {
					t.Error("empty index")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
