package eval

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// bigPairsDB builds a database whose self-join triple rule explodes
// quadratically: pairs(G, X) with n rows per group, so joining three
// copies on G yields groups*n^3 intermediate tuples — enough work that
// a canceled or budgeted evaluation must abort early to finish fast.
func bigPairsDB(groups, n int) *storage.Database {
	rel := storage.NewRelation("pairs", "G", "X")
	for g := 0; g < groups; g++ {
		for i := 0; i < n; i++ {
			rel.InsertValues(storage.Int(int64(g)), storage.Int(int64(i)))
		}
	}
	db := storage.NewDatabase()
	db.Add(rel)
	return db
}

func explosiveRule(t *testing.T) *datalog.Rule {
	t.Helper()
	return mustRule(t, "answer(G,X,Y,Z) :- pairs(G,X) AND pairs(G,Y) AND pairs(G,Z)")
}

func bothModes(t *testing.T, f func(t *testing.T, mode ExecMode)) {
	t.Helper()
	for _, mode := range []ExecMode{ExecStream, ExecMaterialize} {
		t.Run(mode.String(), func(t *testing.T) { f(t, mode) })
	}
}

func TestPreCanceledContextAborts(t *testing.T) {
	db := bigPairsDB(4, 30)
	r := explosiveRule(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bothModes(t, func(t *testing.T, mode ExecMode) {
		_, err := EvalRule(db, r, nil, &Options{Exec: mode, Ctx: ctx})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	})
}

func TestWallDeadlineAbortsWithinBound(t *testing.T) {
	// A workload that runs far longer than the 10ms wall budget; the
	// abort must be prompt (one batch / one relation op), so finishing
	// within the generous 5s harness bound proves cooperative exit.
	db := bigPairsDB(6, 48)
	r := explosiveRule(t)
	bothModes(t, func(t *testing.T, mode ExecMode) {
		start := time.Now()
		_, err := EvalRule(db, r, nil, &Options{Exec: mode, Limits: Limits{Wall: 10 * time.Millisecond}})
		elapsed := time.Since(start)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v (after %v), want ErrCanceled", err, elapsed)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("abort took %v, want well under the harness bound", elapsed)
		}
	})
}

func TestCancelMidEvaluationAborts(t *testing.T) {
	db := bigPairsDB(6, 48)
	r := explosiveRule(t)
	bothModes(t, func(t *testing.T, mode ExecMode) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := EvalRule(db, r, nil, &Options{Exec: mode, Ctx: ctx})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v (after %v), want ErrCanceled", err, time.Since(start))
		}
	})
}

func TestTupleBudgetAborts(t *testing.T) {
	db := bigPairsDB(4, 30)
	r := explosiveRule(t)
	bothModes(t, func(t *testing.T, mode ExecMode) {
		_, err := EvalRule(db, r, nil, &Options{Exec: mode, Limits: Limits{MaxTuples: 1000}})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
	})
}

func TestMaxRowsAborts(t *testing.T) {
	db := bigPairsDB(2, 10)
	r := explosiveRule(t)
	bothModes(t, func(t *testing.T, mode ExecMode) {
		_, err := EvalRule(db, r, nil, &Options{Exec: mode, Limits: Limits{MaxRows: 5}})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
	})
}

// TestGenerousLimitsPreserveAnswers is the budgets-don't-change-answers
// half of the contract: limits that are set but never hit must yield the
// exact relation the unlimited engine computes, in both modes and at
// several worker counts.
func TestGenerousLimitsPreserveAnswers(t *testing.T) {
	db := bigPairsDB(3, 8)
	r := explosiveRule(t)
	baseline, err := EvalRule(db, r, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	generous := Limits{Wall: time.Hour, MaxTuples: 1 << 30, MaxRows: 1 << 30}
	for _, mode := range []ExecMode{ExecStream, ExecMaterialize} {
		for _, workers := range []int{1, 2, 4} {
			name := fmt.Sprintf("%s/w%d", mode, workers)
			got, err := EvalRule(db, r, nil, &Options{
				Exec: mode, Workers: workers, Ctx: context.Background(), Limits: generous,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !got.Equal(baseline) {
				t.Fatalf("%s: answer differs from unlimited baseline", name)
			}
		}
	}
}

func TestMaxRowsExactlyAtAnswerSizePasses(t *testing.T) {
	// The budget is a cap, not a truncation: an answer of exactly
	// MaxRows rows must succeed untouched.
	db := basketsDB()
	r := mustRule(t, "answer(B) :- baskets(B,beer) AND baskets(B,diapers)")
	bothModes(t, func(t *testing.T, mode ExecMode) {
		got, err := EvalRule(db, r, nil, &Options{Exec: mode, Limits: Limits{MaxRows: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 2 {
			t.Fatalf("got %d rows, want 2", got.Len())
		}
	})
}
