package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// benchDB builds r(A,B), s(B,C) with moderate fan-out and a small t(A).
func benchDB(rows int) *storage.Database {
	rng := rand.New(rand.NewSource(8))
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B")
	s := storage.NewRelation("s", "B", "C")
	tt := storage.NewRelation("t", "A")
	for i := 0; i < rows; i++ {
		r.InsertValues(storage.Int(int64(rng.Intn(rows/4+1))), storage.Int(int64(rng.Intn(rows/8+1))))
		s.InsertValues(storage.Int(int64(rng.Intn(rows/8+1))), storage.Int(int64(rng.Intn(rows/4+1))))
	}
	for i := 0; i < rows/20+1; i++ {
		tt.InsertValues(storage.Int(int64(i)))
	}
	db.Add(r)
	db.Add(s)
	db.Add(tt)
	return db
}

func benchEval(b *testing.B, src string, opts *Options) {
	db := benchDB(20_000)
	rule, err := datalog.ParseRule(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalRule(db, rule, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoWayJoin(b *testing.B) {
	benchEval(b, "answer(A,C) :- r(A,B) AND s(B,C)", nil)
}

func BenchmarkThreeWayJoinWithSemiJoin(b *testing.B) {
	benchEval(b, "answer(A,C) :- r(A,B) AND s(B,C) AND t(A)", nil)
}

func BenchmarkJoinWithNegation(b *testing.B) {
	benchEval(b, "answer(A,B) :- r(A,B) AND NOT t(A)", nil)
}

func BenchmarkJoinWithComparison(b *testing.B) {
	benchEval(b, "answer(A,C) :- r(A,B) AND s(B,C) AND A < C", nil)
}

func BenchmarkJoinBodyOrderVsGreedy(b *testing.B) {
	for _, s := range []OrderStrategy{OrderGreedy, OrderBodyOrder} {
		b.Run(s.String(), func(b *testing.B) {
			benchEval(b, "answer(A,C) :- r(A,B) AND s(B,C) AND t(A)", &Options{Order: s})
		})
	}
}

func BenchmarkJoinOrderPlanning(b *testing.B) {
	db := benchDB(20_000)
	var body []datalog.Subgoal
	for i := 0; i < 6; i++ {
		body = append(body, datalog.NewAtom("r", datalog.Var(fmt.Sprintf("A%d", i)), datalog.Var(fmt.Sprintf("A%d", i+1))))
	}
	rule := datalog.NewRule(datalog.NewAtom("answer", datalog.Var("A0")), body...)
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := JoinOrder(db, rule, OrderGreedy); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := JoinOrder(db, rule, OrderExhaustive); err != nil {
				b.Fatal(err)
			}
		}
	})
}
