package eval

import (
	"strings"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// basketsDB builds the tiny market-basket database used across tests.
//
//	basket 1: beer, diapers, relish
//	basket 2: beer, diapers
//	basket 3: beer
func basketsDB() *storage.Database {
	b := storage.NewRelation("baskets", "BID", "Item")
	add := func(bid int64, items ...string) {
		for _, it := range items {
			b.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	add(1, "beer", "diapers", "relish")
	add(2, "beer", "diapers")
	add(3, "beer")
	db := storage.NewDatabase()
	db.Add(b)
	return db
}

func mustRule(t *testing.T, src string) *datalog.Rule {
	t.Helper()
	r, err := datalog.ParseRule(src)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", src, err)
	}
	return r
}

func TestEvalGroundBaskets(t *testing.T) {
	db := basketsDB()
	r := mustRule(t, "answer(B) :- baskets(B,beer) AND baskets(B,diapers)")
	got, err := EvalGround(db, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]storage.Value{{storage.Int(1)}, {storage.Int(2)}}
	if got.Len() != len(want) {
		t.Fatalf("got %d tuples: %s", got.Len(), got.Dump())
	}
	for _, w := range want {
		if !got.Contains(storage.Tuple(w)) {
			t.Errorf("missing %v", w)
		}
	}
}

func TestEvalRuleWithParams(t *testing.T) {
	db := basketsDB()
	r := mustRule(t, "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2")
	// Project onto ($1, $2, B): the extended answer used by flocks.
	out := []datalog.Term{datalog.Param("1"), datalog.Param("2"), datalog.Var("B")}
	got, err := EvalRule(db, r, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs in lexicographic order with their baskets:
	// (beer,diapers):1,2 (beer,relish):1 (diapers,relish):1
	if got.Len() != 4 {
		t.Fatalf("got %d tuples:\n%s", got.Len(), got.Dump())
	}
	if !got.Contains(storage.Tuple{storage.Str("beer"), storage.Str("diapers"), storage.Int(2)}) {
		t.Error("missing (beer,diapers,2)")
	}
	if got.Contains(storage.Tuple{storage.Str("diapers"), storage.Str("beer"), storage.Int(1)}) {
		t.Error("arithmetic subgoal failed to order the pair")
	}
}

func TestEvalNegation(t *testing.T) {
	db := basketsDB()
	// Baskets containing beer but not diapers.
	r := mustRule(t, "answer(B) :- baskets(B,beer) AND NOT baskets(B,diapers)")
	got, err := EvalGround(db, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(storage.Tuple{storage.Int(3)}) {
		t.Fatalf("got %s", got.Dump())
	}
}

func TestEvalMedicalExample(t *testing.T) {
	// Example 2.2: patients with a symptom unexplained by their disease.
	db := storage.NewDatabase()
	diagnoses := storage.NewRelation("diagnoses", "Patient", "Disease")
	exhibits := storage.NewRelation("exhibits", "Patient", "Symptom")
	treatments := storage.NewRelation("treatments", "Patient", "Medicine")
	causes := storage.NewRelation("causes", "Disease", "Symptom")
	for _, rel := range []*storage.Relation{diagnoses, exhibits, treatments, causes} {
		db.Add(rel)
	}
	// Patient 1 has flu which causes fever; exhibits fever (explained) and
	// rash (unexplained); takes drugA.
	diagnoses.InsertValues(storage.Int(1), storage.Str("flu"))
	exhibits.InsertValues(storage.Int(1), storage.Str("fever"))
	exhibits.InsertValues(storage.Int(1), storage.Str("rash"))
	treatments.InsertValues(storage.Int(1), storage.Str("drugA"))
	causes.InsertValues(storage.Str("flu"), storage.Str("fever"))
	// Patient 2 has cold (causes cough); exhibits rash; takes drugA.
	diagnoses.InsertValues(storage.Int(2), storage.Str("cold"))
	exhibits.InsertValues(storage.Int(2), storage.Str("rash"))
	treatments.InsertValues(storage.Int(2), storage.Str("drugA"))
	causes.InsertValues(storage.Str("cold"), storage.Str("cough"))

	r := mustRule(t, `answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s)`)
	out := []datalog.Term{datalog.Param("s"), datalog.Param("m"), datalog.Var("P")}
	got, err := EvalRule(db, r, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (rash, drugA) for patients 1 and 2; fever is explained for patient 1.
	if got.Len() != 2 {
		t.Fatalf("got:\n%s", got.Dump())
	}
	for _, p := range []int64{1, 2} {
		if !got.Contains(storage.Tuple{storage.Str("rash"), storage.Str("drugA"), storage.Int(p)}) {
			t.Errorf("missing (rash, drugA, %d)", p)
		}
	}
}

func TestEvalUnionFig4Shape(t *testing.T) {
	db := storage.NewDatabase()
	inTitle := storage.NewRelation("inTitle", "D", "W")
	inAnchor := storage.NewRelation("inAnchor", "A", "W")
	link := storage.NewRelation("link", "A", "D1", "D2")
	db.Add(inTitle)
	db.Add(inAnchor)
	db.Add(link)
	// doc d1 title: apple banana; anchor a1 (text: apple) links d0 -> d1.
	inTitle.InsertValues(storage.Str("d1"), storage.Str("apple"))
	inTitle.InsertValues(storage.Str("d1"), storage.Str("banana"))
	inAnchor.InsertValues(storage.Str("a1"), storage.Str("apple"))
	link.InsertValues(storage.Str("a1"), storage.Str("d0"), storage.Str("d1"))

	u, err := datalog.ParseUnion(`
		answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
		answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
		answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2`)
	if err != nil {
		t.Fatal(err)
	}
	outFor := func(r *datalog.Rule) []datalog.Term {
		return []datalog.Term{datalog.Param("1"), datalog.Param("2"), r.Head.Args[0]}
	}
	got, err := EvalUnion(db, u, outFor, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rule 1: (apple,banana,d1). Rule 2: (apple,banana,a1) [anchor apple,
	// title banana] and (apple,apple,... no: $1<$2 required). Rule 3:
	// (apple,apple) fails; anchor word apple as $2 needs title $1 < apple:
	// none. So: 2 tuples.
	if got.Len() != 2 {
		t.Fatalf("got:\n%s", got.Dump())
	}
	if !got.Contains(storage.Tuple{storage.Str("apple"), storage.Str("banana"), storage.Str("d1")}) {
		t.Error("missing title-title pair")
	}
	if !got.Contains(storage.Tuple{storage.Str("apple"), storage.Str("banana"), storage.Str("a1")}) {
		t.Error("missing anchor-title pair")
	}
}

func TestEvalErrors(t *testing.T) {
	db := basketsDB()
	// Unsafe rule.
	if _, err := EvalRule(db, mustRule(t, "answer(X) :- baskets(B,$1)"), nil, nil); err == nil {
		t.Error("unsafe rule should error")
	}
	// Missing relation.
	if _, err := EvalRule(db, mustRule(t, "answer(X) :- nosuch(X)"), nil, nil); err == nil {
		t.Error("missing relation should error")
	}
	// Arity mismatch.
	if _, err := EvalRule(db, mustRule(t, "answer(X) :- baskets(X)"), nil, nil); err == nil {
		t.Error("arity mismatch should error")
	}
	// Parameters left unprojected are an error only via EvalGround.
	if _, err := EvalGround(db, mustRule(t, "answer(B) :- baskets(B,$1)"), nil); err == nil {
		t.Error("EvalGround with params should error")
	}
	// Projection onto an unbound term.
	r := mustRule(t, "answer(B) :- baskets(B,$1)")
	if _, err := EvalRule(db, r, []datalog.Term{datalog.Var("Z")}, nil); err == nil {
		t.Error("projecting unbound term should error")
	}
	// Projection onto a constant.
	if _, err := EvalRule(db, r, []datalog.Term{datalog.CInt(1)}, nil); err == nil {
		t.Error("projecting constant should error")
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	db := storage.NewDatabase()
	e := storage.NewRelation("e", "X", "Y")
	e.InsertValues(storage.Int(1), storage.Int(1)) // self-loop
	e.InsertValues(storage.Int(1), storage.Int(2))
	e.InsertValues(storage.Int(2), storage.Int(1))
	db.Add(e)
	r := mustRule(t, "answer(X) :- e(X,X)")
	got, err := EvalGround(db, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(storage.Tuple{storage.Int(1)}) {
		t.Fatalf("self-loop query got:\n%s", got.Dump())
	}
}

func TestEvalCrossProduct(t *testing.T) {
	db := storage.NewDatabase()
	a := storage.NewRelation("a", "X")
	b := storage.NewRelation("b", "Y")
	a.InsertValues(storage.Int(1))
	a.InsertValues(storage.Int(2))
	b.InsertValues(storage.Str("u"))
	b.InsertValues(storage.Str("v"))
	db.Add(a)
	db.Add(b)
	r := mustRule(t, "answer(X,Y) :- a(X) AND b(Y)")
	got, err := EvalGround(db, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("cross product size %d, want 4", got.Len())
	}
}

func TestEvalConstOnlyComparison(t *testing.T) {
	db := basketsDB()
	rTrue := mustRule(t, "answer(B) :- baskets(B,beer) AND 1 < 2")
	got, err := EvalGround(db, rTrue, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("true constant comparison: %d tuples, want 3", got.Len())
	}
	rFalse := mustRule(t, "answer(B) :- baskets(B,beer) AND 2 < 1")
	got, err = EvalGround(db, rFalse, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("false constant comparison: %d tuples, want 0", got.Len())
	}
}

func TestJoinOrderStrategies(t *testing.T) {
	db := basketsDB()
	small := storage.NewRelation("small", "Item")
	small.InsertValues(storage.Str("beer"))
	db.Add(small)
	r := mustRule(t, "answer(B) :- baskets(B,I) AND small(I)")

	bodyOrder, err := JoinOrder(db, r, OrderBodyOrder)
	if err != nil {
		t.Fatal(err)
	}
	if bodyOrder[0] != 0 || bodyOrder[1] != 1 {
		t.Errorf("body order = %v", bodyOrder)
	}
	greedy, err := JoinOrder(db, r, OrderGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if greedy[0] != 1 { // small relation first
		t.Errorf("greedy order = %v, want small first", greedy)
	}
	exh, err := JoinOrder(db, r, OrderExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if len(exh) != 2 {
		t.Errorf("exhaustive order = %v", exh)
	}

	// All strategies yield the same result set.
	var results []*storage.Relation
	for _, s := range []OrderStrategy{OrderGreedy, OrderBodyOrder, OrderExhaustive} {
		res, err := EvalRule(db, r, nil, &Options{Order: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !results[0].Equal(results[i]) {
			t.Errorf("strategy %d result differs", i)
		}
	}
}

func TestGreedyOrderDisconnected(t *testing.T) {
	db := storage.NewDatabase()
	for _, spec := range []struct {
		name string
		n    int
	}{{"big", 10}, {"tiny", 1}, {"mid", 5}} {
		rel := storage.NewRelation(spec.name, "X"+spec.name)
		for i := 0; i < spec.n; i++ {
			rel.InsertValues(storage.Int(int64(i)))
		}
		db.Add(rel)
	}
	r := mustRule(t, "answer(Xbig,Xtiny,Xmid) :- big(Xbig) AND tiny(Xtiny) AND mid(Xmid)")
	order, err := JoinOrder(db, r, OrderGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 {
		t.Errorf("greedy should start with tiny; got %v", order)
	}
}

func TestFixedOrder(t *testing.T) {
	db := basketsDB()
	r := mustRule(t, "answer(B) :- baskets(B,$1) AND baskets(B,$2)")
	out := []datalog.Term{datalog.Param("1"), datalog.Param("2"), datalog.Var("B")}
	res1, err := EvalRule(db, r, out, &Options{FixedOrder: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := EvalRule(db, r, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Equal(res2) {
		t.Error("fixed order changed the result")
	}
	if _, err := EvalRule(db, r, out, &Options{FixedOrder: []int{0}}); err == nil {
		t.Error("short fixed order should error")
	}
}

func TestTrace(t *testing.T) {
	db := basketsDB()
	r := mustRule(t, "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2")
	tr := &Trace{}
	out := []datalog.Term{datalog.Param("1"), datalog.Param("2"), datalog.Var("B")}
	if _, err := EvalRule(db, r, out, &Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	// The streaming executor records every physical operator: scan, index
	// build, join, projection, and the answer sink. The $1 < $2 comparison
	// is absorbed into the join of the second atom.
	steps := tr.Steps()
	if len(steps) != 5 {
		t.Fatalf("trace steps = %d: %s", len(steps), tr)
	}
	if !strings.Contains(steps[2].Desc, "absorbed") {
		t.Errorf("join step should note the absorbed comparison: %q", steps[2].Desc)
	}
	if tr.MaxRows() < steps[len(steps)-1].Rows {
		t.Error("MaxRows below final size")
	}
	if tr.TotalRows() <= 0 {
		t.Error("TotalRows should be positive")
	}
	if tr.String() == "" {
		t.Error("empty trace string")
	}
}

func TestExecutorStepwise(t *testing.T) {
	db := basketsDB()
	r := mustRule(t, "answer(B) :- baskets(B,$1) AND baskets(B,$2)")
	ex, err := NewExecutor(db, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Done() {
		t.Fatal("fresh executor should not be done")
	}
	if got := ex.Remaining(); len(got) != 2 {
		t.Fatalf("remaining = %v", got)
	}
	if err := ex.JoinNext(0); err != nil {
		t.Fatal(err)
	}
	if err := ex.JoinNext(0); err == nil {
		t.Error("double join should error")
	}
	if err := ex.JoinNext(5); err == nil {
		t.Error("out-of-range join should error")
	}
	// Mid-evaluation reduction: keep only beer as $1.
	cur := ex.Current()
	reduced := storage.NewRelation("reduced", cur.Columns()...)
	p := cur.ColumnIndex("$1")
	for _, tp := range cur.Tuples() {
		if tp[p] == storage.Str("beer") {
			reduced.Insert(tp)
		}
	}
	if err := ex.ReplaceCurrent(reduced); err != nil {
		t.Fatal(err)
	}
	if err := ex.JoinNext(1); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Finish([]datalog.Term{datalog.Param("1"), datalog.Param("2")})
	if err != nil {
		t.Fatal(err)
	}
	// $1 restricted to beer.
	for _, tp := range res.Tuples() {
		if tp[0] != storage.Str("beer") {
			t.Errorf("leaked $1 = %v", tp[0])
		}
	}

	// ReplaceCurrent validation.
	bad := storage.NewRelation("bad", "Z")
	if err := ex.ReplaceCurrent(bad); err == nil {
		t.Error("mismatched ReplaceCurrent should error")
	}
	if _, err := ex.Finish([]datalog.Term{datalog.Param("1")}); err != nil {
		t.Errorf("Finish after completion: %v", err)
	}
}

func TestFinishBeforeDone(t *testing.T) {
	db := basketsDB()
	r := mustRule(t, "answer(B) :- baskets(B,$1) AND baskets(B,$2)")
	ex, err := NewExecutor(db, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Finish(nil); err == nil {
		t.Error("Finish before all joins should error")
	}
}
