package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// This file cross-validates the hash-join engine against a brute-force
// evaluator that restates the semantics directly: enumerate every
// assignment of the rule's variables and parameters over the database's
// active domain, check each subgoal, and project. Agreement on randomized
// rules and databases is the package's core correctness property.

// bruteEval evaluates r by active-domain enumeration.
func bruteEval(db *storage.Database, r *datalog.Rule, out []datalog.Term) *storage.Relation {
	// Active domain: every value appearing anywhere in the database.
	domSet := make(map[storage.Value]struct{})
	for _, name := range db.Names() {
		for _, t := range db.MustRelation(name).Tuples() {
			for _, v := range t {
				domSet[v] = struct{}{}
			}
		}
	}
	var dom []storage.Value
	for v := range domSet {
		dom = append(dom, v)
	}

	// Collect unknowns (vars + params).
	var unknowns []datalog.Term
	seen := make(map[string]struct{})
	addTerm := func(t datalog.Term) {
		col, ok := termColumn(t)
		if !ok {
			return
		}
		if _, dup := seen[col]; !dup {
			seen[col] = struct{}{}
			unknowns = append(unknowns, t)
		}
	}
	for _, t := range r.Head.Args {
		addTerm(t)
	}
	for _, sg := range r.Body {
		switch g := sg.(type) {
		case *datalog.Atom:
			for _, t := range g.Args {
				addTerm(t)
			}
		case *datalog.Comparison:
			addTerm(g.Left)
			addTerm(g.Right)
		}
	}

	cols := make([]string, len(out))
	for i, t := range out {
		cols[i], _ = termColumn(t)
	}
	res := storage.NewRelation("brute", cols...)

	assignment := make(map[string]storage.Value)
	valueOf := func(t datalog.Term) storage.Value {
		if c, isConst := t.(datalog.Const); isConst {
			return c.Val
		}
		col, _ := termColumn(t)
		return assignment[col]
	}
	holds := func() bool {
		for _, sg := range r.Body {
			switch g := sg.(type) {
			case *datalog.Atom:
				tuple := make(storage.Tuple, len(g.Args))
				for i, t := range g.Args {
					tuple[i] = valueOf(t)
				}
				rel := db.MustRelation(g.Pred)
				if rel.Contains(tuple) == g.Negated {
					return false
				}
			case *datalog.Comparison:
				if !g.Op.Eval(valueOf(g.Left), valueOf(g.Right)) {
					return false
				}
			}
		}
		return true
	}
	var enumerate func(i int)
	enumerate = func(i int) {
		if i == len(unknowns) {
			if holds() {
				tuple := make(storage.Tuple, len(out))
				for j, t := range out {
					tuple[j] = valueOf(t)
				}
				res.Insert(tuple)
			}
			return
		}
		col, _ := termColumn(unknowns[i])
		for _, v := range dom {
			assignment[col] = v
			enumerate(i + 1)
		}
		delete(assignment, col)
	}
	enumerate(0)
	return res
}

// randomDB builds a small database with relations r/2, s/2, t/1 over a
// 4-value domain.
func randomDB(rng *rand.Rand) *storage.Database {
	db := storage.NewDatabase()
	dom := []storage.Value{storage.Int(0), storage.Int(1), storage.Str("a"), storage.Str("b")}
	mk := func(name string, arity, rows int) {
		cols := make([]string, arity)
		for i := range cols {
			cols[i] = fmt.Sprintf("C%d", i)
		}
		rel := storage.NewRelation(name, cols...)
		for i := 0; i < rows; i++ {
			t := make(storage.Tuple, arity)
			for j := range t {
				t[j] = dom[rng.Intn(len(dom))]
			}
			rel.Insert(t)
		}
		db.Add(rel)
	}
	mk("r", 2, rng.Intn(8))
	mk("s", 2, rng.Intn(8))
	mk("t", 1, rng.Intn(4))
	return db
}

// randomSafeRule builds a random extended CQ and retries until safe.
func randomSafeRule(rng *rand.Rand) *datalog.Rule {
	terms := []datalog.Term{
		datalog.Var("X"), datalog.Var("Y"), datalog.Var("Z"),
		datalog.Param("p"), datalog.Param("q"),
		datalog.CInt(0), datalog.CStr("a"),
	}
	for {
		n := 1 + rng.Intn(4)
		body := make([]datalog.Subgoal, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0, 1: // positive binary atom
				pred := []string{"r", "s"}[rng.Intn(2)]
				body = append(body, datalog.NewAtom(pred, terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))]))
			case 2: // positive unary atom
				body = append(body, datalog.NewAtom("t", terms[rng.Intn(len(terms))]))
			case 3: // negated atom
				pred := []string{"r", "s"}[rng.Intn(2)]
				a := datalog.NewAtom(pred, terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))])
				a.Negated = true
				body = append(body, a)
			default: // comparison
				ops := []datalog.CmpOp{datalog.Lt, datalog.Le, datalog.Eq, datalog.Ne, datalog.Gt, datalog.Ge}
				body = append(body, &datalog.Comparison{
					Op:   ops[rng.Intn(len(ops))],
					Left: terms[rng.Intn(len(terms))], Right: terms[rng.Intn(len(terms))],
				})
			}
		}
		// Head: X if bound, else first bound var, else nullary.
		r := datalog.NewRule(datalog.NewAtom("answer", datalog.Var("X")), body...)
		if datalog.IsSafe(r) {
			return r
		}
		r = datalog.NewRule(datalog.NewAtom("answer"), body...)
		if datalog.IsSafe(r) {
			return r
		}
		// retry with a fresh body
	}
}

// outTermsFor projects head args plus any parameters, the shape flocks use.
func outTermsFor(r *datalog.Rule) []datalog.Term {
	out := append([]datalog.Term(nil), r.Head.Args...)
	for _, p := range r.Params() {
		out = append(out, p)
	}
	return out
}

func TestEngineMatchesBruteForce(t *testing.T) {
	const trials = 400
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		db := randomDB(rng)
		r := randomSafeRule(rng)
		out := outTermsFor(r)
		want := bruteEval(db, r, out)
		for _, s := range []OrderStrategy{OrderGreedy, OrderBodyOrder, OrderExhaustive} {
			got, err := EvalRule(db, r, out, &Options{Order: s})
			if err != nil {
				t.Fatalf("trial %d (%v): rule %s: %v", trial, s, r, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (%v): rule %s\nengine:\n%s\nbrute force:\n%s\ndb: %s",
					trial, s, r, got.Dump(), want.Dump(), db)
			}
		}
	}
}
