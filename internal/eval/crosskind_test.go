package eval

import (
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// TestCrossKindJoin is the regression for the kind-sensitive join keys:
// Compare/Equal treat Int(1) and Float(1) as the same value, but the hash
// keys used to tag kinds, so a join between an int column and a float
// column silently dropped the matches that a comparison subgoal (which
// goes through Compare) would have admitted. The key encoding now
// normalizes integral floats onto the int encoding, so joins agree with
// Compare.
func TestCrossKindJoin(t *testing.T) {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B")
	r.InsertValues(storage.Int(1), storage.Str("int1"))
	r.InsertValues(storage.Int(2), storage.Str("int2"))
	r.InsertValues(storage.Float(2.5), storage.Str("half"))
	s := storage.NewRelation("s", "A", "C")
	s.InsertValues(storage.Float(1), storage.Str("float1"))
	s.InsertValues(storage.Int(2), storage.Str("alsoint"))
	s.InsertValues(storage.Float(2.5), storage.Str("halfc"))
	db.Add(r)
	db.Add(s)

	rule, err := datalog.ParseRule(`answer(B,C) :- r(A,B) AND s(A,C)`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalRule(db, rule, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"int1", "float1"}, {"int2", "alsoint"}, {"half", "halfc"}}
	if got.Len() != len(want) {
		t.Fatalf("cross-kind join produced %d tuples, want %d:\n%v", got.Len(), len(want), got.Tuples())
	}
	for _, w := range want {
		if !got.Contains(storage.Tuple{storage.Str(w[0]), storage.Str(w[1])}) {
			t.Errorf("missing join result %v", w)
		}
	}

	// Set semantics must also collapse Equal cross-kind tuples: inserting
	// Float(3) after Int(3) is a duplicate, not a new row.
	dup := storage.NewRelation("dup", "X")
	dup.InsertValues(storage.Int(3))
	dup.InsertValues(storage.Float(3))
	if dup.Len() != 1 {
		t.Errorf("Int(3) and Float(3) should collapse under set semantics, got %d rows", dup.Len())
	}
}
