package eval

import (
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// TestCrossKindJoin is the regression for the kind-sensitive join keys:
// Compare/Equal treat Int(1) and Float(1) as the same value, but the hash
// keys used to tag kinds, so a join between an int column and a float
// column silently dropped the matches that a comparison subgoal (which
// goes through Compare) would have admitted. The key encoding now
// normalizes integral floats onto the int encoding, so joins agree with
// Compare.
func TestCrossKindJoin(t *testing.T) {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B")
	r.InsertValues(storage.Int(1), storage.Str("int1"))
	r.InsertValues(storage.Int(2), storage.Str("int2"))
	r.InsertValues(storage.Float(2.5), storage.Str("half"))
	s := storage.NewRelation("s", "A", "C")
	s.InsertValues(storage.Float(1), storage.Str("float1"))
	s.InsertValues(storage.Int(2), storage.Str("alsoint"))
	s.InsertValues(storage.Float(2.5), storage.Str("halfc"))
	db.Add(r)
	db.Add(s)

	rule, err := datalog.ParseRule(`answer(B,C) :- r(A,B) AND s(A,C)`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalRule(db, rule, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"int1", "float1"}, {"int2", "alsoint"}, {"half", "halfc"}}
	if got.Len() != len(want) {
		t.Fatalf("cross-kind join produced %d tuples, want %d:\n%v", got.Len(), len(want), got.Tuples())
	}
	for _, w := range want {
		if !got.Contains(storage.Tuple{storage.Str(w[0]), storage.Str(w[1])}) {
			t.Errorf("missing join result %v", w)
		}
	}

	// Set semantics must also collapse Equal cross-kind tuples: inserting
	// Float(3) after Int(3) is a duplicate, not a new row.
	dup := storage.NewRelation("dup", "X")
	dup.InsertValues(storage.Int(3))
	dup.InsertValues(storage.Float(3))
	if dup.Len() != 1 {
		t.Errorf("Int(3) and Float(3) should collapse under set semantics, got %d rows", dup.Len())
	}
}

// TestCrossKindRepeatedVariable is the regression for the repeated-variable
// (dup-check) path: r(X,X,B) must bind X to a single equality class, and the
// engine's equality classes are Compare's — Int(1) and Float(1) join
// together (their AppendKey encodings coincide), so a repeated variable must
// accept them too. The dup checks used Go's kind-sensitive ==, which made
// r(X,X,B) reject a row that the equivalent self-join r(X,Y,B) AND X = Y
// accepts. Every executor shares the fix, keeping the differential oracles
// bit-identical.
func TestCrossKindRepeatedVariable(t *testing.T) {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B", "C")
	r.InsertValues(storage.Int(1), storage.Float(1), storage.Str("cross"))
	r.InsertValues(storage.Int(2), storage.Int(2), storage.Str("same"))
	r.InsertValues(storage.Int(3), storage.Int(4), storage.Str("diff"))
	s := storage.NewRelation("s", "C")
	s.InsertValues(storage.Str("cross"))
	s.InsertValues(storage.Str("same"))
	s.InsertValues(storage.Str("diff"))
	db.Add(r)
	db.Add(s)

	rules := map[string]string{
		// Scan shape: the dup check runs inside the base-relation scan.
		"scan": `answer(C) :- r(X,X,C)`,
		// Join shape: the dup check runs on the indexed (build) side of a
		// hash join while probing from s.
		"join": `answer(C) :- s(C) AND r(X,X,C)`,
	}
	for shape, text := range rules {
		rule, err := datalog.ParseRule(text)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []ExecMode{ExecStream, ExecStreamRows, ExecMaterialize} {
			got, err := EvalRule(db, rule, nil, &Options{Exec: mode})
			if err != nil {
				t.Fatalf("%s/%v: %v", shape, mode, err)
			}
			for _, want := range []string{"cross", "same"} {
				if !got.Contains(storage.Tuple{storage.Str(want)}) {
					t.Errorf("%s/%v: r(X,X,C) dropped %q; repeated variables must use Equal, not ==:\n%v",
						shape, mode, want, got.Tuples())
				}
			}
			if got.Contains(storage.Tuple{storage.Str("diff")}) {
				t.Errorf("%s/%v: r(X,X,C) admitted a row whose columns differ", shape, mode)
			}
		}
	}
}
