package serve

import (
	"container/list"
	"sync"

	"queryflocks/internal/storage"
)

// Memo is the byte-bounded LRU implementation of core.SubqueryMemo: one
// LRU over both memo planes (extended answers under an "e|" key prefix,
// survivor sets under "s|"), bounded by an estimate of the relations'
// resident bytes. Relations handed to Put become shared and immutable —
// every later hit returns the same *storage.Relation, which is safe
// because Relation reads (including lazy index builds) are concurrent-
// safe once mutation stops.
//
// Safe for concurrent use; a nil *Memo is a valid always-miss memo, but
// callers should then leave EvalOptions.Memo nil entirely so the engine
// skips the memo route.
type Memo struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element

	extHits, extMisses   uint64
	survHits, survMisses uint64
	evictions            uint64
}

type memoElem struct {
	key  string
	rel  *storage.Relation
	size int64
}

// NewMemo returns a memo bounded to maxBytes of estimated relation
// payload; maxBytes <= 0 yields nil (memoization disabled).
func NewMemo(maxBytes int64) *Memo {
	if maxBytes <= 0 {
		return nil
	}
	return &Memo{maxBytes: maxBytes, ll: list.New(), entries: make(map[string]*list.Element)}
}

// relBytes estimates a relation's resident footprint: per-tuple slice and
// map-key overhead plus boxed values, and a fixed floor so even empty
// relations count against the bound.
func relBytes(rel *storage.Relation) int64 {
	return int64(rel.Len())*int64(48+24*rel.Arity()) + 256
}

// Extended returns the memoized extended answer for key.
func (m *Memo) Extended(key string) (*storage.Relation, bool) {
	if m == nil {
		return nil, false
	}
	return m.get("e|"+key, &m.extHits, &m.extMisses)
}

// PutExtended stores an extended answer.
func (m *Memo) PutExtended(key string, rel *storage.Relation) {
	m.put("e|"+key, rel)
}

// Survivors returns the memoized survivor set for key.
func (m *Memo) Survivors(key string) (*storage.Relation, bool) {
	if m == nil {
		return nil, false
	}
	return m.get("s|"+key, &m.survHits, &m.survMisses)
}

// PutSurvivors stores a survivor set.
func (m *Memo) PutSurvivors(key string, rel *storage.Relation) {
	m.put("s|"+key, rel)
}

func (m *Memo) get(key string, hits, misses *uint64) (*storage.Relation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		*misses++
		return nil, false
	}
	*hits++
	m.ll.MoveToFront(el)
	return el.Value.(*memoElem).rel, true
}

// put stores rel under key, evicting least-recently-used entries past the
// byte bound. An entry bigger than a quarter of the bound is not cached
// at all — one oversized result must not flush the whole memo.
func (m *Memo) put(key string, rel *storage.Relation) {
	if m == nil {
		return
	}
	size := relBytes(rel)
	if size > m.maxBytes/4 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		e := el.Value.(*memoElem)
		m.bytes += size - e.size
		e.rel, e.size = rel, size
		m.ll.MoveToFront(el)
	} else {
		m.entries[key] = m.ll.PushFront(&memoElem{key: key, rel: rel, size: size})
		m.bytes += size
	}
	for m.bytes > m.maxBytes && m.ll.Len() > 1 {
		tail := m.ll.Back()
		e := tail.Value.(*memoElem)
		m.ll.Remove(tail)
		delete(m.entries, e.key)
		m.bytes -= e.size
		m.evictions++
	}
}

// MemoStats is a snapshot of the memo's occupancy and cumulative
// traffic counters. Extended and survivor lookups are counted apart: a
// threshold-tightened re-run of a flock shows as an extended hit plus a
// survivor miss.
type MemoStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	ExtHits   uint64
	ExtMisses uint64
	SurvHits  uint64
	SurvMiss  uint64
	Evictions uint64
}

// Stats returns a snapshot (zero for a nil memo).
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Entries: m.ll.Len(), Bytes: m.bytes, MaxBytes: m.maxBytes,
		ExtHits: m.extHits, ExtMisses: m.extMisses,
		SurvHits: m.survHits, SurvMiss: m.survMisses,
		Evictions: m.evictions,
	}
}
