// Package serve holds flockd's serving-layer cache subsystems: a
// count-bounded LRU plan cache keyed on canonical program text, a
// byte-bounded LRU memo of candidate-subquery results (the
// core.SubqueryMemo implementation), and the prepared-flock registry
// behind POST /prepare. The structures are deliberately value-agnostic
// (the plan cache and registry store `any`) so the package depends only
// on storage and stays reusable by other front-ends.
//
// Invalidation is by key construction, not by scanning: every plan-cache
// and memo key embeds the database's data-version counter
// (storage.Database.Version), so a mutation that publishes a bumped copy
// strands all prior entries — they age out through normal LRU pressure
// and can never answer a request against the new data.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Handle derives the stable prepared-flock handle for a canonical program
// text: a short content hash, so preparing the same (alpha-equivalent)
// program twice — even across server restarts — yields the same handle.
func Handle(canon string) string {
	sum := sha256.Sum256([]byte(canon))
	return "f" + hex.EncodeToString(sum[:6])
}

// Registry is the prepared-flock table: canonical program text to an
// opaque prepared entry, addressed by the content-derived Handle. Safe
// for concurrent use. Registration is idempotent — re-preparing an
// alpha-equivalent program returns the existing handle.
type Registry struct {
	mu       sync.RWMutex
	byHandle map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byHandle: make(map[string]any)}
}

// Register stores v under the handle derived from canon, unless that
// handle is already registered. It returns the handle and whether an
// entry already existed (the existing entry is kept; prepared flocks are
// immutable once registered).
func (r *Registry) Register(canon string, v any) (handle string, existed bool) {
	handle = Handle(canon)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byHandle[handle]; ok {
		return handle, true
	}
	r.byHandle[handle] = v
	return handle, false
}

// Get returns the entry registered under handle, if any.
func (r *Registry) Get(handle string) (any, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byHandle[handle]
	return v, ok
}

// Len returns the number of prepared flocks.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byHandle)
}
