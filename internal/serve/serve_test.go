package serve

import (
	"fmt"
	"sync"
	"testing"

	"queryflocks/internal/storage"
)

func rel(name string, rows int) *storage.Relation {
	r := storage.NewRelation(name, "A")
	for i := 0; i < rows; i++ {
		r.InsertValues(storage.Int(int64(i)))
	}
	return r
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a: got %v %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was just touched)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("traffic counters: %+v", st)
	}
}

func TestPlanCacheReplace(t *testing.T) {
	c := NewPlanCache(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("replace: got %v", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("replace must not evict: %+v", st)
	}
}

func TestPlanCacheNilIsDisabled(t *testing.T) {
	var c *PlanCache
	if c = NewPlanCache(0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache must always miss")
	}
	if st := c.Stats(); st != (PlanStats{}) {
		t.Fatalf("nil stats: %+v", st)
	}
}

func TestMemoByteBoundEvicts(t *testing.T) {
	// Each 10-row unary relation estimates to 10*(48+24)+256 = 976 bytes.
	// The quarter-bound rule means at least four same-size entries always
	// fit, so bound the memo to exactly four and insert a fifth.
	m := NewMemo(4 * 976)
	for _, k := range []string{"k1", "k2", "k3", "k4"} {
		m.PutExtended(k, rel(k, 10))
	}
	if _, ok := m.Extended("k1"); !ok {
		t.Fatal("k1 should fit")
	}
	m.PutSurvivors("k5", rel("k5", 10)) // evicts k2 (k1 was just touched)
	if _, ok := m.Extended("k2"); ok {
		t.Fatal("k2 should have been evicted as least recently used")
	}
	if _, ok := m.Survivors("k5"); !ok {
		t.Fatal("k5 should be present")
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Entries != 4 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Bytes <= 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("bytes gauge out of range: %+v", st)
	}
}

func TestMemoRejectsOversizedEntry(t *testing.T) {
	m := NewMemo(4000) // quarter bound = 1000 bytes; a 100-row relation exceeds it
	m.PutExtended("big", rel("r", 100))
	if _, ok := m.Extended("big"); ok {
		t.Fatal("an entry above a quarter of the bound must not be cached")
	}
	if st := m.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized put must not count: %+v", st)
	}
}

func TestMemoPlanesAreDistinct(t *testing.T) {
	m := NewMemo(1 << 20)
	m.PutExtended("k", rel("ext", 3))
	if _, ok := m.Survivors("k"); ok {
		t.Fatal("extended and survivor planes must not alias on the same key")
	}
	st := m.Stats()
	if st.SurvMiss != 1 || st.ExtHits != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestMemoNilIsDisabled(t *testing.T) {
	var m *Memo
	if m = NewMemo(0); m != nil {
		t.Fatal("bound 0 should disable the memo")
	}
	m.PutExtended("k", rel("r", 1))
	if _, ok := m.Extended("k"); ok {
		t.Fatal("nil memo must always miss")
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	h1, existed := r.Register("canon text", "v1")
	if existed {
		t.Fatal("first registration should be new")
	}
	h2, existed := r.Register("canon text", "v2")
	if !existed || h1 != h2 {
		t.Fatalf("re-registration: handle %q vs %q, existed=%v", h1, h2, existed)
	}
	if v, ok := r.Get(h1); !ok || v.(string) != "v1" {
		t.Fatalf("the first entry must be kept: %v %v", v, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("len: %d", r.Len())
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("unknown handle must miss")
	}
	if h1 != Handle("canon text") || h1 == Handle("other text") {
		t.Fatalf("handles must be content-derived: %q", h1)
	}
}

// TestConcurrentAccess hammers all three structures from many goroutines;
// it exists to fail under -race if any lock is missing.
func TestConcurrentAccess(t *testing.T) {
	m := NewMemo(10_000)
	c := NewPlanCache(8)
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				m.PutExtended(k, rel("r", i%20))
				m.Extended(k)
				m.PutSurvivors(k, rel("s", i%5))
				m.Survivors(k)
				c.Put(k, i)
				c.Get(k)
				reg.Register(k, g)
				reg.Get(Handle(k))
				m.Stats()
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := m.Stats(); st.Bytes < 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("byte gauge out of bounds after concurrent churn: %+v", st)
	}
}
