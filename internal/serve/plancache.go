package serve

import (
	"container/list"
	"sync"
)

// PlanCache is a count-bounded LRU of prepared evaluation entries, keyed
// on (canonical program text, strategy, database version) — the caller
// composes the key string. A hit skips analysis, flock construction, and
// planning for ad-hoc /query traffic; alpha-equivalent programs share an
// entry because the canonical text is the key's first component. Safe for
// concurrent use; a nil *PlanCache is a valid always-miss cache.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type planElem struct {
	key string
	val any
}

// NewPlanCache returns a cache bounded to capacity entries; a capacity
// <= 0 yields nil (caching disabled).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached entry for key and marks it most recently used.
func (c *PlanCache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planElem).val, true
}

// Put stores an entry, evicting from the LRU tail past the capacity.
// Storing an existing key replaces its value.
func (c *PlanCache) Put(key string, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*planElem).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&planElem{key: key, val: v})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*planElem).key)
		c.evictions++
	}
}

// PlanStats is a snapshot of the cache's occupancy and cumulative
// traffic counters.
type PlanStats struct {
	Entries   int
	Capacity  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns a snapshot (zero for a nil cache).
func (c *PlanCache) Stats() PlanStats {
	if c == nil {
		return PlanStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanStats{Entries: c.ll.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
